//! Deterministic telemetry for parallel solvers: record-then-replay event
//! logs and shard-then-merge observer adapters.
//!
//! [`Observer`] is an `&mut` single-threaded interface, so parallel workers
//! cannot report to the caller's observer directly. Two adapters bridge the
//! gap (DESIGN.md §11):
//!
//! * [`EventLog`] — an [`Observer`] that records every event verbatim;
//!   [`EventLog::replay`] re-emits the stream into any other observer.
//!   Workers record privately and the caller replays the logs **in a
//!   deterministic order** (ascending guess index, ascending λ index, …),
//!   so the caller's observer sees a stream *identical* to a serial run —
//!   for any observer type, including order-sensitive ones like
//!   [`JsonlSink`](super::JsonlSink) and
//!   [`SpanProfiler`](super::SpanProfiler).
//! * [`ThreadLocalTelemetry`] — a fixed array of mutex-guarded [`EventLog`]
//!   shards, one per worker/chunk. Each worker locks only its own shard
//!   (no contention on the hot path); the caller replays shards in index
//!   order afterwards. Aggregating observers can equivalently merge via
//!   [`MetricsRecorder::merge`](super::MetricsRecorder::merge) /
//!   [`SpanProfiler::merge`](super::SpanProfiler::merge).

use super::audit::AuditCandidate;
use super::trace::{TraceId, MAIN_WORKER};
use super::{Observer, PruneReason};
use std::sync::{Mutex, MutexGuard};

/// One recorded [`Observer`] event. Phase names stay `&'static str`
/// because the trait only ever passes static span names.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    GuessStarted(Option<f64>),
    LevelEntered(usize, usize),
    SetSelected(u64, u64, f64),
    BenefitComputed(u64),
    CandidatePruned(PruneReason),
    SubtreePruned(PruneReason),
    PostingScanned(u64),
    HeapStalePop,
    RoundDecided(&'static str, AuditCandidate, Vec<AuditCandidate>),
    PriceCharged(u64, Vec<u32>, f64),
    DegradeDecided(&'static str, u64, u64),
    Speculation(u64, u64),
    GuessRetried,
    TraceStarted(TraceId, &'static str),
    WorkerSwitched(u32),
    PhaseStarted(&'static str),
    PhaseEnded(&'static str, f64),
    ScanPruned(u64),
    BoundRefreshed(u64),
    SketchInconclusive(u64),
    StallDetected(u64, f64),
}

/// An [`Observer`] that records the event stream for later replay.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all recorded events, keeping capacity.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Re-emits every recorded event, in recording order, into `obs`.
    pub fn replay<O: Observer + ?Sized>(&self, obs: &mut O) {
        for e in &self.events {
            match *e {
                Event::GuessStarted(budget) => obs.guess_started(budget),
                Event::LevelEntered(level, allowance) => obs.level_entered(level, allowance),
                Event::SetSelected(id, mben, cost) => obs.set_selected(id, mben, cost),
                Event::BenefitComputed(count) => obs.benefit_computed(count),
                Event::CandidatePruned(reason) => obs.candidate_pruned(reason),
                Event::SubtreePruned(reason) => obs.subtree_pruned(reason),
                Event::PostingScanned(entries) => obs.posting_scanned(entries),
                Event::HeapStalePop => obs.heap_stale_pop(),
                Event::RoundDecided(order, ref winner, ref runners) => {
                    obs.round_decided(order, winner, runners)
                }
                Event::PriceCharged(set_id, ref elements, cost) => {
                    obs.price_charged(set_id, elements, cost)
                }
                Event::DegradeDecided(reason, covered, target) => {
                    obs.degrade_decided(reason, covered, target)
                }
                Event::Speculation(committed, wasted) => obs.speculation(committed, wasted),
                Event::GuessRetried => obs.guess_retried(),
                Event::TraceStarted(id, entry) => obs.trace_started(id, entry),
                Event::WorkerSwitched(worker) => obs.worker_switched(worker),
                Event::PhaseStarted(name) => obs.phase_started(name),
                Event::PhaseEnded(name, seconds) => obs.phase_ended(name, seconds),
                Event::ScanPruned(count) => obs.scan_pruned(count),
                Event::BoundRefreshed(count) => obs.bound_refreshed(count),
                Event::SketchInconclusive(count) => obs.sketch_inconclusive(count),
                Event::StallDetected(ticks, stalled_secs) => {
                    obs.stall_detected(ticks, stalled_secs)
                }
            }
        }
    }
}

impl Observer for EventLog {
    fn guess_started(&mut self, budget: Option<f64>) {
        self.events.push(Event::GuessStarted(budget));
    }

    fn level_entered(&mut self, level: usize, allowance: usize) {
        self.events.push(Event::LevelEntered(level, allowance));
    }

    fn set_selected(&mut self, id: u64, marginal_benefit: u64, cost: f64) {
        self.events
            .push(Event::SetSelected(id, marginal_benefit, cost));
    }

    fn benefit_computed(&mut self, count: u64) {
        self.events.push(Event::BenefitComputed(count));
    }

    fn candidate_pruned(&mut self, reason: PruneReason) {
        self.events.push(Event::CandidatePruned(reason));
    }

    fn subtree_pruned(&mut self, reason: PruneReason) {
        self.events.push(Event::SubtreePruned(reason));
    }

    fn posting_scanned(&mut self, entries: u64) {
        self.events.push(Event::PostingScanned(entries));
    }

    fn heap_stale_pop(&mut self) {
        self.events.push(Event::HeapStalePop);
    }

    fn round_decided(
        &mut self,
        order: &'static str,
        winner: &AuditCandidate,
        runners_up: &[AuditCandidate],
    ) {
        self.events
            .push(Event::RoundDecided(order, *winner, runners_up.to_vec()));
    }

    fn price_charged(&mut self, set_id: u64, elements: &[u32], cost: f64) {
        self.events
            .push(Event::PriceCharged(set_id, elements.to_vec(), cost));
    }

    fn degrade_decided(&mut self, reason: &'static str, covered: u64, target: u64) {
        self.events
            .push(Event::DegradeDecided(reason, covered, target));
    }

    fn speculation(&mut self, committed: u64, wasted: u64) {
        self.events.push(Event::Speculation(committed, wasted));
    }

    fn guess_retried(&mut self) {
        self.events.push(Event::GuessRetried);
    }

    fn trace_started(&mut self, trace_id: TraceId, entry: &'static str) {
        self.events.push(Event::TraceStarted(trace_id, entry));
    }

    fn worker_switched(&mut self, worker_id: u32) {
        self.events.push(Event::WorkerSwitched(worker_id));
    }

    fn phase_started(&mut self, name: &'static str) {
        self.events.push(Event::PhaseStarted(name));
    }

    fn phase_ended(&mut self, name: &'static str, seconds: f64) {
        self.events.push(Event::PhaseEnded(name, seconds));
    }

    fn scan_pruned(&mut self, count: u64) {
        self.events.push(Event::ScanPruned(count));
    }

    fn bound_refreshed(&mut self, count: u64) {
        self.events.push(Event::BoundRefreshed(count));
    }

    fn sketch_inconclusive(&mut self, count: u64) {
        self.events.push(Event::SketchInconclusive(count));
    }

    fn stall_detected(&mut self, ticks: u64, stalled_secs: f64) {
        self.events.push(Event::StallDetected(ticks, stalled_secs));
    }
}

/// Per-worker telemetry shards for one parallel region.
///
/// Create with one shard per worker/chunk, hand shard `i` to worker `i`
/// ([`shard`](ThreadLocalTelemetry::shard) locks only that shard, so
/// workers never contend), then [`replay`](ThreadLocalTelemetry::replay)
/// into the real observer once the region joins. Shards replay in index
/// order, which is deterministic for contiguous-chunk work splits.
#[derive(Debug, Default)]
pub struct ThreadLocalTelemetry {
    shards: Vec<Mutex<EventLog>>,
}

impl ThreadLocalTelemetry {
    /// `shards` independent event logs (one per worker/chunk).
    pub fn new(shards: usize) -> ThreadLocalTelemetry {
        ThreadLocalTelemetry {
            shards: (0..shards).map(|_| Mutex::new(EventLog::new())).collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether there are no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Locks shard `i` for recording. Each worker should touch only its
    /// own index; the lock exists to make cross-thread handoff safe, not
    /// to arbitrate contention.
    ///
    /// # Panics
    /// Panics if `i` is out of range or the shard's lock was poisoned.
    pub fn shard(&self, i: usize) -> MutexGuard<'_, EventLog> {
        self.shards[i].lock().expect("telemetry shard poisoned")
    }

    /// Replays every shard into `obs` in ascending shard order, then
    /// clears the shards for reuse in the next parallel region.
    ///
    /// Each non-empty shard's events are bracketed with
    /// [`Observer::worker_switched`]: shard `i` announces worker `i + 1`
    /// before its events, and the replay announces
    /// [`MAIN_WORKER`] once at the end (only if any shard spoke), so the
    /// receiving observer knows *which thread recorded what* instead of
    /// seeing an anonymous flattened stream. Empty shards stay silent —
    /// a region that did no work leaves no trace in the stream.
    pub fn replay<O: Observer + ?Sized>(&self, obs: &mut O) {
        let mut switched = false;
        for (i, shard) in self.shards.iter().enumerate() {
            let mut log = shard.lock().expect("telemetry shard poisoned");
            if !log.is_empty() {
                obs.worker_switched(i as u32 + 1);
                switched = true;
                log.replay(obs);
                log.clear();
            }
        }
        if switched {
            obs.worker_switched(MAIN_WORKER);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{MetricsRecorder, PhaseSpan, SpanProfiler, PHASE_SCAN, PHASE_TOTAL};

    /// Fires one of every event into `obs`.
    fn drive<O: Observer + ?Sized>(obs: &mut O) {
        obs.guess_started(Some(2.0));
        obs.level_entered(0, 4);
        obs.phase_started(PHASE_TOTAL);
        obs.benefit_computed(9);
        obs.candidate_pruned(PruneReason::BelowFloor);
        obs.subtree_pruned(PruneReason::CostBound);
        obs.posting_scanned(17);
        obs.heap_stale_pop();
        let winner = AuditCandidate {
            id: 3,
            benefit: 5,
            weight: 1.5,
        };
        let runner = AuditCandidate {
            id: 1,
            benefit: 2,
            weight: 1.0,
        };
        obs.round_decided("gain", &winner, &[runner]);
        obs.set_selected(3, 5, 1.5);
        obs.price_charged(3, &[0, 4, 7], 1.5);
        obs.degrade_decided("tick_budget", 3, 9);
        obs.speculation(2, 1);
        obs.guess_retried();
        obs.phase_ended(PHASE_TOTAL, 0.5);
    }

    #[test]
    fn replay_reproduces_metrics_exactly() {
        let mut log = EventLog::new();
        drive(&mut log);
        assert_eq!(log.len(), 15);

        let mut direct = MetricsRecorder::new();
        drive(&mut direct);
        let mut replayed = MetricsRecorder::new();
        log.replay(&mut replayed);

        assert_eq!(replayed.guesses, direct.guesses);
        assert_eq!(replayed.selections, direct.selections);
        assert_eq!(replayed.benefits_computed, direct.benefits_computed);
        assert_eq!(replayed.candidates_pruned, direct.candidates_pruned);
        assert_eq!(replayed.subtrees_pruned, direct.subtrees_pruned);
        assert_eq!(replayed.postings_scanned, direct.postings_scanned);
        assert_eq!(replayed.heap_stale_pops, direct.heap_stale_pops);
        assert_eq!(replayed.guesses_committed, direct.guesses_committed);
        assert_eq!(replayed.guesses_wasted, direct.guesses_wasted);
        assert_eq!(replayed.guesses_retried, direct.guesses_retried);
        assert_eq!(replayed.rounds_audited, direct.rounds_audited);
        assert_eq!(replayed.marginal_benefit_hist, direct.marginal_benefit_hist);
        assert_eq!(replayed.phases(), direct.phases());
    }

    #[test]
    fn replay_reproduces_audit_ledger_exactly() {
        use crate::telemetry::audit::DecisionLedger;
        let mut log = EventLog::new();
        drive(&mut log);
        let mut direct = DecisionLedger::new();
        drive(&mut direct);
        let mut replayed = DecisionLedger::new();
        log.replay(&mut replayed);
        assert_eq!(direct.guesses(), replayed.guesses());
        assert_eq!(direct.prices(), replayed.prices());
    }

    #[test]
    fn replay_preserves_event_order_for_span_nesting() {
        // A log with nested spans must reconstruct the same tree when
        // replayed into a profiler as when observed live.
        let mut log = EventLog::new();
        log.phase_started("outer");
        log.phase_started("inner");
        log.benefit_computed(4);
        log.phase_ended("inner", 0.25);
        log.phase_ended("outer", 1.0);

        let mut p = SpanProfiler::new();
        log.replay(&mut p);
        let tree = p.tree();
        assert_eq!(tree.name, "outer");
        let inner = tree.child("inner").expect("nesting preserved");
        assert_eq!(inner.counters.benefits_computed, 4);
        assert_eq!(inner.total_secs, 0.25);
    }

    #[test]
    fn clear_empties_the_log() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.heap_stale_pop();
        assert!(!log.is_empty());
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn thread_local_telemetry_replays_shards_in_index_order() {
        let tls = ThreadLocalTelemetry::new(3);
        assert_eq!(tls.len(), 3);
        // Record out of index order — replay must still be 0, 1, 2.
        tls.shard(2).benefit_computed(300);
        tls.shard(0).benefit_computed(100);
        tls.shard(1).benefit_computed(200);

        let mut log = EventLog::new();
        tls.replay(&mut log);
        assert_eq!(
            log.events,
            vec![
                Event::WorkerSwitched(1),
                Event::BenefitComputed(100),
                Event::WorkerSwitched(2),
                Event::BenefitComputed(200),
                Event::WorkerSwitched(3),
                Event::BenefitComputed(300),
                Event::WorkerSwitched(MAIN_WORKER),
            ]
        );
        // Shards are cleared for the next region.
        let mut again = EventLog::new();
        tls.replay(&mut again);
        assert!(again.is_empty());
    }

    #[test]
    fn replay_skips_empty_shards_and_restores_main_worker() {
        // Only shard 1 records: the stream is switch(2), events, switch(0);
        // idle shards 0 and 2 leave no worker announcements behind.
        let tls = ThreadLocalTelemetry::new(3);
        tls.shard(1).benefit_computed(7);
        let mut log = EventLog::new();
        tls.replay(&mut log);
        assert_eq!(
            log.events,
            vec![
                Event::WorkerSwitched(2),
                Event::BenefitComputed(7),
                Event::WorkerSwitched(MAIN_WORKER),
            ]
        );
        // An all-idle region emits nothing at all — not even switches.
        let mut silent = EventLog::new();
        tls.replay(&mut silent);
        assert!(silent.is_empty());
    }

    #[test]
    fn replay_reproduces_trace_events() {
        let mut log = EventLog::new();
        let id = crate::telemetry::TraceId::mint("cmc", 10, 20);
        log.trace_started(id, "cmc");
        log.worker_switched(3);
        let mut m = MetricsRecorder::new();
        log.replay(&mut m);
        assert_eq!(m.traces_started, 1);
        assert_eq!(m.worker_switches, 1);
    }

    #[test]
    fn replay_reproduces_pruned_scan_advisories() {
        let mut log = EventLog::new();
        log.scan_pruned(11);
        log.bound_refreshed(5);
        log.sketch_inconclusive(2);
        log.scan_pruned(4);
        let mut m = MetricsRecorder::new();
        log.replay(&mut m);
        assert_eq!(m.scan_candidates_pruned, 15);
        assert_eq!(m.scan_bounds_refreshed, 5);
        assert_eq!(m.scan_sketch_inconclusive, 2);
    }

    #[test]
    fn thread_local_telemetry_shards_record_spans_concurrently() {
        let tls = ThreadLocalTelemetry::new(4);
        std::thread::scope(|s| {
            for i in 0..4 {
                let tls = &tls;
                s.spawn(move || {
                    let mut shard = tls.shard(i);
                    let span = PhaseSpan::enter(&mut *shard, PHASE_SCAN);
                    shard.benefit_computed(i as u64 + 1);
                    span.exit(&mut *shard);
                });
            }
        });
        let mut m = MetricsRecorder::new();
        tls.replay(&mut m);
        assert_eq!(m.benefits_computed, 1 + 2 + 3 + 4);
        let scan = m.phases().iter().find(|p| p.name == PHASE_SCAN).unwrap();
        assert_eq!(scan.count, 4, "one scan span per shard");
    }
}
