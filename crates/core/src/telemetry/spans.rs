//! Hierarchical span profiling on top of the [`Observer`] phase events.
//!
//! Solvers already emit paired [`Observer::phase_started`] /
//! [`Observer::phase_ended`] events through [`PhaseSpan`](super::PhaseSpan)
//! — nested, because inner spans open after and close before their
//! enclosing one. [`SpanProfiler`] reconstructs that nesting into a tree:
//! each node aggregates every completion of one span *name* under one
//! parent path, with total wall-clock, derived self time (total minus
//! children), a completion count, and the work counters (benefits
//! computed, postings scanned, prunes, …) attributed to whichever span was
//! innermost when they fired.
//!
//! The result is the per-run equivalent of a flamegraph:
//!
//! ```text
//! total                 0.412s 100.0%  self 0.002s   ×1  benefits=18432
//!   guess               0.410s  99.5%  self 0.004s   ×3
//!     init              0.120s  29.1%  self 0.120s   ×3  benefits=18000
//!     select            0.286s  69.4%  self 0.286s   ×3  selections=24
//! ```
//!
//! Counter events that fire while no span is open are attributed to the
//! synthetic root (rendered as `(unspanned)` when non-empty).

use super::{Observer, PruneReason};
use std::fmt::Write as _;

/// Work counters attributable to a single span (the deterministic subset
/// of [`MetricsRecorder`](super::MetricsRecorder)'s totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanCounters {
    /// Benefit computations (the Fig. 6 "patterns considered" unit).
    pub benefits_computed: u64,
    /// Inverted-index posting entries scanned.
    pub postings_scanned: u64,
    /// Candidates pruned (all reasons).
    pub candidates_pruned: u64,
    /// Lattice subtrees pruned (all reasons).
    pub subtrees_pruned: u64,
    /// Sets/patterns selected.
    pub selections: u64,
    /// Stale lazy-greedy heap pops.
    pub heap_stale_pops: u64,
}

impl SpanCounters {
    /// Whether every counter is zero.
    pub fn is_empty(&self) -> bool {
        *self == SpanCounters::default()
    }

    /// `(name, value)` pairs of the non-zero counters, in a stable order.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        [
            ("benefits", self.benefits_computed),
            ("postings", self.postings_scanned),
            ("cand_pruned", self.candidates_pruned),
            ("subtree_pruned", self.subtrees_pruned),
            ("selections", self.selections),
            ("stale_pops", self.heap_stale_pops),
        ]
        .into_iter()
        .filter(|&(_, v)| v > 0)
        .collect()
    }
}

/// One aggregated node of the span tree: all completions of span `name`
/// under the same parent path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name as passed to [`Observer::phase_started`].
    pub name: &'static str,
    /// Completed spans aggregated into this node.
    pub count: u64,
    /// Total wall-clock seconds across completions (children included).
    pub total_secs: f64,
    /// Counters attributed while this span was innermost.
    pub counters: SpanCounters,
    /// Child spans in first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: &'static str) -> SpanNode {
        SpanNode {
            name,
            count: 0,
            total_secs: 0.0,
            counters: SpanCounters::default(),
            children: Vec::new(),
        }
    }

    /// Seconds spent in this span itself: total minus children's totals,
    /// floored at zero (timer jitter can make children sum past the
    /// parent by nanoseconds).
    pub fn self_secs(&self) -> f64 {
        let children: f64 = self.children.iter().map(|c| c.total_secs).sum();
        (self.total_secs - children).max(0.0)
    }

    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }

    fn render_into(&self, out: &mut String, depth: usize, scale: f64) {
        let indent = "  ".repeat(depth);
        let pct = if scale > 0.0 {
            100.0 * self.total_secs / scale
        } else {
            0.0
        };
        let _ = write!(
            out,
            "{indent}{:<width$} {:>9.6}s {:>5.1}%  self {:>9.6}s  ×{}",
            self.name,
            self.total_secs,
            pct,
            self.self_secs(),
            self.count,
            width = 24usize.saturating_sub(2 * depth),
        );
        for (name, value) in self.counters.nonzero() {
            let _ = write!(out, "  {name}={value}");
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1, scale);
        }
    }
}

/// An [`Observer`] that reconstructs the nested phase spans of a run into
/// an aggregated self/total-time tree with per-span counter attribution.
///
/// Robust to imbalance: a `phase_ended` whose name is open deeper in the
/// stack closes the intervening spans (without crediting them extra time);
/// a `phase_ended` for a span that was never started is ignored.
#[derive(Debug, Clone)]
pub struct SpanProfiler {
    /// Arena of nodes; index 0 is the synthetic root.
    nodes: Vec<SpanNode>,
    /// `children_idx[i]` = arena indices of `nodes[i]`'s children. Kept
    /// separate from the `SpanNode.children` trees, which are only
    /// assembled by [`tree`](SpanProfiler::tree).
    children_idx: Vec<Vec<usize>>,
    /// Arena indices of the currently open spans, outermost first.
    stack: Vec<usize>,
}

impl Default for SpanProfiler {
    fn default() -> SpanProfiler {
        SpanProfiler::new()
    }
}

impl SpanProfiler {
    /// A fresh profiler with no recorded spans.
    pub fn new() -> SpanProfiler {
        SpanProfiler {
            nodes: vec![SpanNode::new("(unspanned)")],
            children_idx: vec![Vec::new()],
            stack: Vec::new(),
        }
    }

    /// Number of currently open (unclosed) spans.
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    fn current(&self) -> usize {
        *self.stack.last().unwrap_or(&0)
    }

    /// Index of `parent`'s child named `name`, creating it if needed.
    fn child_idx(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&idx) = self.children_idx[parent]
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(SpanNode::new(name));
        self.children_idx.push(Vec::new());
        self.children_idx[parent].push(idx);
        idx
    }

    fn counters(&mut self) -> &mut SpanCounters {
        let idx = self.current();
        &mut self.nodes[idx].counters
    }

    /// The aggregated span tree. When the run produced exactly one
    /// top-level span and no unspanned counters, that span is the root of
    /// the returned tree; otherwise a synthetic `(run)` node wraps the
    /// top-level spans (its `counters` carry any unspanned events).
    pub fn tree(&self) -> SpanNode {
        let mut root = self.assemble(0);
        root.total_secs = root.children.iter().map(|c| c.total_secs).sum();
        if root.children.len() == 1 && root.counters.is_empty() {
            root.children.pop().expect("one child")
        } else {
            root.name = "(run)";
            root
        }
    }

    fn assemble(&self, idx: usize) -> SpanNode {
        let mut node = self.nodes[idx].clone();
        node.children = self.children_idx[idx]
            .iter()
            .map(|&c| self.assemble(c))
            .collect();
        node
    }

    /// Merges another profiler's aggregated spans into this one.
    ///
    /// Nodes are matched by name along the same parent path: counts,
    /// times, and counters add; children unknown to `self` are appended
    /// in `other`'s first-seen order. Used by parallel runs where each
    /// worker profiles into its own `SpanProfiler` and the shards are
    /// merged after the region joins. Both profilers should have all
    /// spans closed; `other`'s open-span stack is ignored.
    pub fn merge(&mut self, other: &SpanProfiler) {
        self.merge_node(0, other, 0);
    }

    fn merge_node(&mut self, dst: usize, other: &SpanProfiler, src: usize) {
        let node = &other.nodes[src];
        self.nodes[dst].count += node.count;
        self.nodes[dst].total_secs += node.total_secs;
        let c = node.counters;
        let d = &mut self.nodes[dst].counters;
        d.benefits_computed += c.benefits_computed;
        d.postings_scanned += c.postings_scanned;
        d.candidates_pruned += c.candidates_pruned;
        d.subtrees_pruned += c.subtrees_pruned;
        d.selections += c.selections;
        d.heap_stale_pops += c.heap_stale_pops;
        for i in 0..other.children_idx[src].len() {
            let child = other.children_idx[src][i];
            let dst_child = self.child_idx(dst, other.nodes[child].name);
            self.merge_node(dst_child, other, child);
        }
    }

    /// Flamegraph-style text rendering of [`tree`](SpanProfiler::tree):
    /// one line per node with total seconds, percent of the root, derived
    /// self time, completion count, and non-zero counters.
    pub fn render(&self) -> String {
        let tree = self.tree();
        let mut out = String::new();
        tree.render_into(&mut out, 0, tree.total_secs);
        out
    }
}

impl Observer for SpanProfiler {
    fn phase_started(&mut self, name: &'static str) {
        let parent = self.current();
        let idx = self.child_idx(parent, name);
        self.stack.push(idx);
    }

    fn phase_ended(&mut self, name: &'static str, seconds: f64) {
        // Find the innermost open span with this name; spans opened after
        // it never got their own end event, so close them silently.
        let Some(pos) = self.stack.iter().rposition(|&i| self.nodes[i].name == name) else {
            return; // end without a start: drop it
        };
        self.stack.truncate(pos + 1);
        let idx = self.stack.pop().expect("pos is in range");
        self.nodes[idx].count += 1;
        self.nodes[idx].total_secs += seconds;
    }

    fn benefit_computed(&mut self, count: u64) {
        self.counters().benefits_computed += count;
    }

    fn posting_scanned(&mut self, entries: u64) {
        self.counters().postings_scanned += entries;
    }

    fn candidate_pruned(&mut self, _reason: PruneReason) {
        self.counters().candidates_pruned += 1;
    }

    fn subtree_pruned(&mut self, _reason: PruneReason) {
        self.counters().subtrees_pruned += 1;
    }

    fn set_selected(&mut self, _id: u64, _marginal_benefit: u64, _cost: f64) {
        self.counters().selections += 1;
    }

    fn heap_stale_pop(&mut self) {
        self.counters().heap_stale_pops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a nested run by hand: total > guess(×2) > select.
    fn profiled() -> SpanProfiler {
        let mut p = SpanProfiler::new();
        p.phase_started("total");
        for _ in 0..2 {
            p.phase_started("guess");
            p.benefit_computed(10);
            p.phase_started("select");
            p.set_selected(1, 5, 1.0);
            p.phase_ended("select", 0.25);
            p.phase_ended("guess", 0.5);
        }
        p.phase_ended("total", 1.2);
        p
    }

    #[test]
    fn aggregates_nested_spans_by_name() {
        let p = profiled();
        assert_eq!(p.open_spans(), 0);
        let tree = p.tree();
        assert_eq!(tree.name, "total");
        assert_eq!(tree.count, 1);
        assert_eq!(tree.total_secs, 1.2);
        assert_eq!(tree.children.len(), 1);
        let guess = tree.child("guess").expect("guess child");
        assert_eq!(guess.count, 2);
        assert_eq!(guess.total_secs, 1.0);
        assert_eq!(guess.counters.benefits_computed, 20);
        let select = guess.child("select").expect("select child");
        assert_eq!(select.count, 2);
        assert_eq!(select.total_secs, 0.5);
        assert_eq!(select.counters.selections, 2);
    }

    #[test]
    fn self_time_subtracts_children() {
        let tree = profiled().tree();
        assert!(
            (tree.self_secs() - 0.2).abs() < 1e-12,
            "{}",
            tree.self_secs()
        );
        let guess = tree.child("guess").unwrap();
        assert!((guess.self_secs() - 0.5).abs() < 1e-12);
        // Leaf: self == total.
        let select = guess.child("select").unwrap();
        assert_eq!(select.self_secs(), select.total_secs);
    }

    #[test]
    fn self_time_floors_at_zero() {
        let mut p = SpanProfiler::new();
        p.phase_started("outer");
        p.phase_started("inner");
        p.phase_ended("inner", 2.0); // child reports more than parent
        p.phase_ended("outer", 1.0);
        assert_eq!(p.tree().self_secs(), 0.0);
    }

    #[test]
    fn counters_attribute_to_innermost_open_span() {
        let mut p = SpanProfiler::new();
        p.phase_started("a");
        p.posting_scanned(7);
        p.phase_started("b");
        p.posting_scanned(30);
        p.phase_ended("b", 0.1);
        p.posting_scanned(5);
        p.phase_ended("a", 0.2);
        let tree = p.tree();
        assert_eq!(tree.counters.postings_scanned, 12);
        assert_eq!(tree.child("b").unwrap().counters.postings_scanned, 30);
    }

    #[test]
    fn unspanned_counters_surface_on_synthetic_root() {
        let mut p = SpanProfiler::new();
        p.heap_stale_pop(); // before any span opens
        p.phase_started("total");
        p.phase_ended("total", 0.5);
        let tree = p.tree();
        assert_eq!(tree.name, "(run)");
        assert_eq!(tree.counters.heap_stale_pops, 1);
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.total_secs, 0.5);
    }

    #[test]
    fn multiple_roots_wrap_in_synthetic_run() {
        let mut p = SpanProfiler::new();
        for name in ["first", "second"] {
            p.phase_started(name);
            p.phase_ended(name, 0.5);
        }
        let tree = p.tree();
        assert_eq!(tree.name, "(run)");
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.total_secs, 1.0);
    }

    #[test]
    fn unbalanced_end_closes_intervening_spans() {
        let mut p = SpanProfiler::new();
        p.phase_started("outer");
        p.phase_started("leaked"); // never explicitly ended
        p.phase_ended("outer", 1.0);
        assert_eq!(p.open_spans(), 0);
        let tree = p.tree();
        assert_eq!(tree.name, "outer");
        assert_eq!(tree.count, 1);
        let leaked = tree.child("leaked").unwrap();
        assert_eq!(leaked.count, 0, "no end event, no completion");
        assert_eq!(leaked.total_secs, 0.0);
    }

    #[test]
    fn stray_end_is_ignored() {
        let mut p = SpanProfiler::new();
        p.phase_started("a");
        p.phase_ended("never_started", 9.0);
        assert_eq!(p.open_spans(), 1, "open span untouched");
        p.phase_ended("a", 0.1);
        assert_eq!(p.tree().total_secs, 0.1);
    }

    #[test]
    fn render_is_flamegraph_shaped() {
        let text = profiled().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].starts_with("total"), "{text}");
        assert!(lines[0].contains("100.0%"), "{text}");
        assert!(lines[1].starts_with("  guess"), "{text}");
        assert!(lines[1].contains("×2"), "{text}");
        assert!(lines[1].contains("benefits=20"), "{text}");
        assert!(lines[2].starts_with("    select"), "{text}");
        assert!(lines[2].contains("selections=2"), "{text}");
    }

    #[test]
    fn merge_equals_single_profiler_over_both_streams() {
        // Shard 1: total > guess > select; shard 2: total > guess > init.
        let drive_a = |p: &mut SpanProfiler| {
            p.phase_started("total");
            p.phase_started("guess");
            p.benefit_computed(5);
            p.phase_started("select");
            p.set_selected(1, 3, 1.0);
            p.phase_ended("select", 0.1);
            p.phase_ended("guess", 0.3);
            p.phase_ended("total", 0.4);
        };
        let drive_b = |p: &mut SpanProfiler| {
            p.phase_started("total");
            p.phase_started("guess");
            p.phase_started("init");
            p.posting_scanned(11);
            p.phase_ended("init", 0.05);
            p.phase_ended("guess", 0.2);
            p.phase_ended("total", 0.25);
        };

        let mut merged = SpanProfiler::new();
        drive_a(&mut merged);
        let mut shard = SpanProfiler::new();
        drive_b(&mut shard);
        merged.merge(&shard);

        let mut single = SpanProfiler::new();
        drive_a(&mut single);
        drive_b(&mut single);

        assert_eq!(merged.tree(), single.tree());
    }

    #[test]
    fn merge_appends_unknown_children_in_first_seen_order() {
        let mut base = SpanProfiler::new();
        base.phase_started("a");
        base.phase_ended("a", 1.0);
        let mut other = SpanProfiler::new();
        for name in ["b", "c"] {
            other.phase_started(name);
            other.phase_ended(name, 0.5);
        }
        base.merge(&other);
        let tree = base.tree();
        let names: Vec<&str> = tree.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(tree.total_secs, 2.0);
    }

    #[test]
    fn merge_of_four_deep_shards_preserves_time_and_counter_invariants() {
        // Each worker shard profiles a 4-deep chain total > guess > scan >
        // chunk with shard-specific times and counters; a fifth stream
        // merges in a divergent branch (total > guess > select) to prove
        // path-aligned matching, not positional matching.
        let drive_shard = |p: &mut SpanProfiler, i: u64| {
            let secs = 0.1 * (i + 1) as f64;
            p.phase_started("total");
            p.phase_started("guess");
            p.benefit_computed(10 * (i + 1));
            p.phase_started("scan");
            p.posting_scanned(100 + i);
            p.phase_started("chunk");
            p.heap_stale_pop();
            p.phase_ended("chunk", secs);
            p.phase_ended("scan", secs * 2.0);
            p.phase_ended("guess", secs * 3.0);
            p.phase_ended("total", secs * 4.0);
        };
        let mut merged = SpanProfiler::new();
        drive_shard(&mut merged, 0);
        for i in 1..4u64 {
            let mut shard = SpanProfiler::new();
            drive_shard(&mut shard, i);
            merged.merge(&shard);
        }
        let mut divergent = SpanProfiler::new();
        divergent.phase_started("total");
        divergent.phase_started("guess");
        divergent.phase_started("select");
        divergent.set_selected(1, 2, 3.0);
        divergent.phase_ended("select", 0.01);
        divergent.phase_ended("guess", 0.02);
        divergent.phase_ended("total", 0.03);
        merged.merge(&divergent);

        let tree = merged.tree();
        // Totals sum across shards at every depth: 0.1+0.2+0.3+0.4 = 1.0
        // per unit of the per-shard multiplier.
        let close = |a: f64, b: f64| (a - b).abs() < 1e-12;
        assert_eq!(tree.count, 5);
        assert!(
            close(tree.total_secs, 4.0 * 1.0 + 0.03),
            "{}",
            tree.total_secs
        );
        let guess = tree.child("guess").expect("guess");
        assert!(close(guess.total_secs, 3.0 * 1.0 + 0.02));
        let scan = guess.child("scan").expect("scan");
        let chunk = scan.child("chunk").expect("chunk");
        assert!(close(scan.total_secs, 2.0 * 1.0));
        assert!(close(chunk.total_secs, 1.0));
        // Self time = total minus direct children, at every level.
        assert!(close(tree.self_secs(), tree.total_secs - guess.total_secs));
        assert!(close(
            guess.self_secs(),
            guess.total_secs - scan.total_secs - guess.child("select").expect("select").total_secs
        ));
        assert_eq!(chunk.self_secs(), chunk.total_secs, "leaf self == total");
        // Counters attribute to the innermost span of their shard's path
        // and add across shards — never smeared up or down the tree.
        assert_eq!(guess.counters.benefits_computed, 10 + 20 + 30 + 40);
        assert_eq!(scan.counters.postings_scanned, 100 + 101 + 102 + 103);
        assert_eq!(chunk.counters.heap_stale_pops, 4);
        assert_eq!(scan.counters.benefits_computed, 0, "no smear down");
        assert_eq!(tree.counters.postings_scanned, 0, "no smear up");
        assert_eq!(guess.child("select").unwrap().counters.selections, 1);
        // Completion counts add shard-wise.
        assert_eq!(guess.count, 5);
        assert_eq!(scan.count, 4);
        assert_eq!(chunk.count, 4);
    }

    #[test]
    fn counters_nonzero_skips_zeroes() {
        let mut c = SpanCounters::default();
        assert!(c.is_empty());
        assert!(c.nonzero().is_empty());
        c.selections = 3;
        c.postings_scanned = 9;
        assert_eq!(c.nonzero(), vec![("postings", 9), ("selections", 3)]);
    }
}
