//! Deterministic sliding-window telemetry aggregation (DESIGN.md §16).
//!
//! Every aggregate built so far ([`MetricsRecorder`], the flight
//! recorder, the audit ledger) observes exactly one solve and stops. A
//! long-lived serving process needs *continuous* telemetry: rolling
//! rates, windowed quantiles, and high-watermarks over the last `W`
//! solves, broken down by entry point. This module provides exactly
//! that — and, crucially, stays inside the workspace's determinism
//! contract by windowing on **solve-sequence boundaries**, never wall
//! clock:
//!
//! * a "window slot" is one completed solve (one closed root
//!   [`PHASE_TOTAL`](super::PHASE_TOTAL) span), identified by its
//!   position in the deterministic event stream;
//! * every windowed value is a deterministic work counter (selections,
//!   benefit computations, degraded flags) — wall-clock durations are
//!   deliberately excluded;
//! * parallel runs replay their telemetry shards in deterministic order
//!   ([`ThreadLocalTelemetry`](super::ThreadLocalTelemetry)), so a
//!   [`SolveWindows`] fed by a `Threads(N)` run is bit-identical to the
//!   same solves on `Threads(1)`.
//!
//! [`WindowedCounter`] tracks a per-solve contribution series with its
//! windowed sum; [`RollingHistogram`] keeps exact per-solve values for
//! the last `W` solves in [`LogHistogram`]-compatible power-of-two
//! buckets and answers p50/p90/p99; [`SolveWindows`] is the [`Observer`]
//! that assembles both into a global view plus a per-entry-point
//! breakdown keyed by the [`trace_started`](Observer::trace_started)
//! entry tag.
//!
//! [`MetricsRecorder`]: super::MetricsRecorder

use super::trace::TraceId;
use super::{audit, LogHistogram, Observer, PruneReason, PHASE_TOTAL};
use std::collections::VecDeque;

/// The default window width, in solves.
pub const DEFAULT_WINDOW: usize = 32;

/// A counter windowed over the last `W` solves: each completed solve
/// contributes one value, the window keeps the most recent `W`
/// contributions, and the all-time total plus the per-solve
/// high-watermark ride along. Rates are per *solve* — the deterministic
/// replacement for wall-clock rates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedCounter {
    window: usize,
    slots: VecDeque<u64>,
    windowed_sum: u64,
    total: u64,
    high_watermark: u64,
}

impl WindowedCounter {
    /// A counter windowed over the last `window` solves.
    ///
    /// # Panics
    /// Panics when `window` is zero — an empty window aggregates nothing.
    pub fn new(window: usize) -> WindowedCounter {
        assert!(window > 0, "window must hold at least one solve");
        WindowedCounter {
            window,
            // One spare slot so steady-state push-then-evict never grows
            // the buffer (allocation-stable soak loops depend on this).
            slots: VecDeque::with_capacity(window + 1),
            windowed_sum: 0,
            total: 0,
            high_watermark: 0,
        }
    }

    /// Records one solve's contribution, evicting the oldest solve once
    /// the window is full. Returns `true` when an eviction happened (a
    /// window rollover).
    pub fn push(&mut self, value: u64) -> bool {
        self.slots.push_back(value);
        self.windowed_sum += value;
        self.total += value;
        self.high_watermark = self.high_watermark.max(value);
        if self.slots.len() > self.window {
            let evicted = self.slots.pop_front().expect("window over-full");
            self.windowed_sum -= evicted;
            true
        } else {
            false
        }
    }

    /// Sum of the contributions currently inside the window.
    pub fn windowed_sum(&self) -> u64 {
        self.windowed_sum
    }

    /// All-time sum across every solve ever pushed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest single-solve contribution ever pushed (all-time, not
    /// windowed — the high-watermark an operator alerts on).
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
    }

    /// Solves currently inside the window (`≤ window`).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no solve has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The configured window width.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Mean contribution per solve inside the window (0.0 when empty) —
    /// the deterministic "rate" (per solve, not per second).
    pub fn rate_per_solve(&self) -> f64 {
        if self.slots.is_empty() {
            0.0
        } else {
            self.windowed_sum as f64 / self.slots.len() as f64
        }
    }
}

/// A histogram over the last `W` solves: keeps the exact per-solve
/// values in a ring plus an incrementally maintained bucket vector using
/// [`LogHistogram`]'s power-of-two bucket layout, so
/// [`quantile`](RollingHistogram::quantile) matches what a fresh
/// [`LogHistogram`] over the same window would answer — including the
/// cap at the exact observed window maximum.
///
/// Eviction happens at the exact window edge: the `W+1`-th value pushes
/// out the 1st, never sooner, never later (the PR 2 `bucket_range`
/// off-by-one history is why the edge cases are unit-tested explicitly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollingHistogram {
    window: usize,
    values: VecDeque<u64>,
    /// Bucket counts for the values currently in the window, indexed by
    /// [`LogHistogram::bucket_of`] (65 buckets cover all of `u64`).
    buckets: [u64; 65],
    windowed_sum: u64,
    total_count: u64,
    high_watermark: u64,
}

impl RollingHistogram {
    /// A histogram windowed over the last `window` solves.
    ///
    /// # Panics
    /// Panics when `window` is zero.
    pub fn new(window: usize) -> RollingHistogram {
        assert!(window > 0, "window must hold at least one solve");
        RollingHistogram {
            window,
            values: VecDeque::with_capacity(window + 1),
            buckets: [0; 65],
            windowed_sum: 0,
            total_count: 0,
            high_watermark: 0,
        }
    }

    /// Records one solve's value, evicting the oldest once the window is
    /// full. Returns `true` on eviction (a window rollover).
    pub fn record(&mut self, value: u64) -> bool {
        self.values.push_back(value);
        self.buckets[LogHistogram::bucket_of(value)] += 1;
        self.windowed_sum += value;
        self.total_count += 1;
        self.high_watermark = self.high_watermark.max(value);
        if self.values.len() > self.window {
            let evicted = self.values.pop_front().expect("window over-full");
            self.buckets[LogHistogram::bucket_of(evicted)] -= 1;
            self.windowed_sum -= evicted;
            true
        } else {
            false
        }
    }

    /// Values currently inside the window (`≤ window`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The configured window width.
    pub fn window(&self) -> usize {
        self.window
    }

    /// All-time count of recorded values (evicted ones included).
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// Sum of the values currently inside the window.
    pub fn windowed_sum(&self) -> u64 {
        self.windowed_sum
    }

    /// Largest value currently inside the window (0 when empty).
    /// Recomputed from the retained values, so eviction of the old
    /// maximum is handled exactly.
    pub fn window_max(&self) -> u64 {
        self.values.iter().copied().max().unwrap_or(0)
    }

    /// Largest value ever recorded (all-time, survives eviction).
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
    }

    /// The `q`-quantile over the values currently in the window, with
    /// [`LogHistogram::quantile`] semantics: rank `⌈q·len⌉` (clamped to
    /// `[1, len]`), the answering bucket's inclusive upper bound, capped
    /// at the exact [`window_max`](RollingHistogram::window_max). Returns
    /// 0 when the window is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.values.len() as u64;
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, hi) = LogHistogram::bucket_range(i);
                return hi.min(self.window_max());
            }
        }
        self.window_max() // unreachable when counts are consistent
    }
}

/// One completed solve's deterministic contribution to the windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveSample {
    /// Sets/patterns selected during the solve.
    pub selections: u64,
    /// Benefit computations during the solve (the Fig. 6 work unit).
    pub benefits_computed: u64,
    /// Whether the solve degraded (deadline/fault path).
    pub degraded: bool,
}

/// The windowed aggregates for one entry point (or the global view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryWindow {
    /// All-time solves finalized under this entry.
    pub solves: u64,
    /// All-time degraded solves under this entry.
    pub degraded_solves: u64,
    /// Per-solve selection counts, windowed.
    pub selections: WindowedCounter,
    /// Per-solve benefit-computation counts, windowed.
    pub benefits: WindowedCounter,
    /// Per-solve degraded flags (0/1), windowed — `windowed_sum` is the
    /// degraded-solve count inside the window.
    pub degraded: WindowedCounter,
    /// Distribution of benefit computations per solve over the window —
    /// the p50/p90/p99 SLO surface.
    pub benefits_hist: RollingHistogram,
}

impl EntryWindow {
    fn new(window: usize) -> EntryWindow {
        EntryWindow {
            solves: 0,
            degraded_solves: 0,
            selections: WindowedCounter::new(window),
            benefits: WindowedCounter::new(window),
            degraded: WindowedCounter::new(window),
            benefits_hist: RollingHistogram::new(window),
        }
    }

    /// Folds one finalized solve in; returns `true` when the window
    /// rolled over (an eviction happened).
    fn observe(&mut self, sample: &SolveSample) -> bool {
        self.solves += 1;
        self.degraded_solves += u64::from(sample.degraded);
        self.selections.push(sample.selections);
        self.benefits.push(sample.benefits_computed);
        self.degraded.push(u64::from(sample.degraded));
        self.benefits_hist.record(sample.benefits_computed)
    }

    /// Fraction of windowed solves that degraded (0.0 when empty).
    pub fn degraded_rate(&self) -> f64 {
        self.degraded.rate_per_solve()
    }
}

/// Sliding-window aggregation over a stream of solves: a global
/// [`EntryWindow`] plus a per-entry-point breakdown keyed by the
/// [`trace_started`](Observer::trace_started) entry tag.
///
/// Feed it either as an [`Observer`] (attach it to the solve's
/// [`Fanout`](super::Fanout); it accumulates the in-flight solve from
/// events and finalizes on the root `phase_ended(PHASE_TOTAL)`), or
/// directly via [`observe`](SolveWindows::observe) with a prepared
/// [`SolveSample`]. Both paths window on the solve sequence, so the
/// aggregates are bit-identical across thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveWindows {
    window: usize,
    solves: u64,
    rollovers: u64,
    global: EntryWindow,
    /// Per-entry windows in first-seen order (deterministic, because the
    /// replayed event stream is).
    entries: Vec<(&'static str, EntryWindow)>,
    // In-flight accumulation for the Observer path.
    cur: SolveSample,
    cur_entry: Option<&'static str>,
    total_depth: usize,
}

impl SolveWindows {
    /// Windows over the last [`DEFAULT_WINDOW`] solves.
    pub fn new() -> SolveWindows {
        SolveWindows::with_window(DEFAULT_WINDOW)
    }

    /// Windows over the last `window` solves.
    ///
    /// # Panics
    /// Panics when `window` is zero.
    pub fn with_window(window: usize) -> SolveWindows {
        SolveWindows {
            window,
            solves: 0,
            rollovers: 0,
            global: EntryWindow::new(window),
            entries: Vec::new(),
            cur: SolveSample::default(),
            cur_entry: None,
            total_depth: 0,
        }
    }

    /// The configured window width, in solves.
    pub fn window(&self) -> usize {
        self.window
    }

    /// All-time solves finalized.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Window rollovers: solves that evicted an older solve from the
    /// global window (`max(0, solves − window)` by construction — kept
    /// as an explicit counter because it is the operator-facing "the
    /// window is live" signal, and pinned *out* of the exact-diff set).
    pub fn rollovers(&self) -> u64 {
        self.rollovers
    }

    /// The global (all entries) window.
    pub fn global(&self) -> &EntryWindow {
        &self.global
    }

    /// Per-entry windows, in first-seen order.
    pub fn entries(&self) -> &[(&'static str, EntryWindow)] {
        &self.entries
    }

    /// The window for `entry`, if any solve has carried that tag.
    pub fn entry(&self, entry: &str) -> Option<&EntryWindow> {
        self.entries
            .iter()
            .find(|(name, _)| *name == entry)
            .map(|(_, w)| w)
    }

    /// Folds one finalized solve into the global window and the entry's
    /// window (`entry` defaults to `"untraced"` for solves that never
    /// announced a trace).
    pub fn observe(&mut self, entry: Option<&'static str>, sample: SolveSample) {
        self.solves += 1;
        if self.global.observe(&sample) {
            self.rollovers += 1;
        }
        let entry = entry.unwrap_or("untraced");
        let slot = match self.entries.iter_mut().find(|(name, _)| *name == entry) {
            Some((_, w)) => w,
            None => {
                self.entries.push((entry, EntryWindow::new(self.window)));
                &mut self.entries.last_mut().expect("just pushed").1
            }
        };
        slot.observe(&sample);
    }

    /// Finalizes the in-flight solve accumulated through the Observer
    /// path (normally triggered by the root `phase_ended(PHASE_TOTAL)`).
    fn finalize_solve(&mut self) {
        let sample = std::mem::take(&mut self.cur);
        let entry = self.cur_entry.take();
        self.observe(entry, sample);
    }
}

impl Default for SolveWindows {
    fn default() -> SolveWindows {
        SolveWindows::new()
    }
}

impl Observer for SolveWindows {
    fn trace_started(&mut self, _trace_id: TraceId, entry: &'static str) {
        // Latch the outermost entry: nested solves (a sweep's inner
        // rounds) mint their own traces but belong to the outer solve.
        if self.cur_entry.is_none() {
            self.cur_entry = Some(entry);
        }
    }

    fn set_selected(&mut self, _id: u64, _marginal_benefit: u64, _cost: f64) {
        self.cur.selections += 1;
    }

    fn benefit_computed(&mut self, count: u64) {
        self.cur.benefits_computed += count;
    }

    fn degrade_decided(&mut self, _reason: &'static str, _covered: u64, _target: u64) {
        self.cur.degraded = true;
    }

    fn phase_started(&mut self, name: &'static str) {
        if name == PHASE_TOTAL {
            self.total_depth += 1;
        }
    }

    fn phase_ended(&mut self, name: &'static str, _seconds: f64) {
        if name == PHASE_TOTAL {
            self.total_depth = self.total_depth.saturating_sub(1);
            // Only the root total span closes a solve; nested totals
            // (inner rounds of a sweep) stay part of the outer solve.
            if self.total_depth == 0 {
                self.finalize_solve();
            }
        }
    }

    // The remaining events carry nothing the windows aggregate, but an
    // explicit no-op keeps this observer honest about what it ignores.
    fn candidate_pruned(&mut self, _reason: PruneReason) {}
    fn subtree_pruned(&mut self, _reason: PruneReason) {}
    fn round_decided(
        &mut self,
        _order: &'static str,
        _winner: &audit::AuditCandidate,
        _runners_up: &[audit::AuditCandidate],
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_counter_sums_and_evicts() {
        let mut c = WindowedCounter::new(3);
        assert!(c.is_empty());
        assert_eq!(c.rate_per_solve(), 0.0);
        assert!(!c.push(10));
        assert!(!c.push(20));
        assert!(!c.push(30));
        assert_eq!(c.len(), 3);
        assert_eq!(c.windowed_sum(), 60);
        assert_eq!(c.total(), 60);
        // The 4th push evicts the 1st: window edge, not before.
        assert!(c.push(40));
        assert_eq!(c.len(), 3);
        assert_eq!(c.windowed_sum(), 90);
        assert_eq!(c.total(), 100);
        assert_eq!(c.high_watermark(), 40);
        assert_eq!(c.rate_per_solve(), 30.0);
        assert_eq!(c.window(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one solve")]
    fn zero_window_is_rejected() {
        WindowedCounter::new(0);
    }

    #[test]
    fn rolling_histogram_evicts_at_exact_window_edge() {
        let mut h = RollingHistogram::new(4);
        // Exactly W records: no eviction yet.
        for v in [1u64, 2, 4, 8] {
            assert!(!h.record(v), "no eviction before the edge");
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.windowed_sum(), 15);
        assert_eq!(h.window_max(), 8);
        // Record W+1: evicts exactly the oldest (1), nothing else.
        assert!(h.record(16), "the W+1-th record evicts");
        assert_eq!(h.len(), 4);
        assert_eq!(h.windowed_sum(), 30);
        assert_eq!(h.total_count(), 5);
        // Bucket of the evicted value is decremented, not zeroed.
        assert_eq!(h.buckets[LogHistogram::bucket_of(1)], 0);
        assert_eq!(h.buckets[LogHistogram::bucket_of(16)], 1);
    }

    #[test]
    fn rolling_histogram_max_survives_eviction_of_old_max() {
        let mut h = RollingHistogram::new(2);
        h.record(100);
        h.record(3);
        h.record(5); // evicts 100
        assert_eq!(h.window_max(), 5, "old max left the window");
        assert_eq!(h.high_watermark(), 100, "all-time watermark survives");
        assert_eq!(h.quantile(1.0), 5, "quantile capped at window max");
    }

    #[test]
    fn rolling_quantiles_match_fresh_log_histogram() {
        // The rolling window's quantiles must equal a LogHistogram built
        // from only the retained values — same buckets, same cap rule.
        let values: Vec<u64> = (0..50).map(|i| (i * 37) % 23).collect();
        let window = 16;
        let mut rolling = RollingHistogram::new(window);
        for &v in &values {
            rolling.record(v);
        }
        let mut fresh = LogHistogram::new();
        for &v in &values[values.len() - window..] {
            fresh.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(rolling.quantile(q), fresh.quantile(q), "q={q}");
        }
        assert_eq!(rolling.window_max(), fresh.max());
    }

    #[test]
    fn rolling_histogram_quantile_on_empty_and_single() {
        let mut h = RollingHistogram::new(8);
        assert_eq!(h.quantile(0.5), 0);
        h.record(7);
        assert_eq!(h.quantile(0.0), 7);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn solve_windows_observer_finalizes_on_root_total() {
        let mut w = SolveWindows::with_window(2);
        for i in 0..3u64 {
            w.trace_started(TraceId::mint("cmc", i, 1), "cmc");
            w.phase_started(PHASE_TOTAL);
            // A nested solve: its trace and total span stay inside.
            w.trace_started(TraceId::mint("opt_cwsc", i, 1), "opt_cwsc");
            w.phase_started(PHASE_TOTAL);
            w.benefit_computed(5);
            w.set_selected(1, 3, 1.0);
            w.phase_ended(PHASE_TOTAL, 0.0);
            w.benefit_computed(5);
            w.phase_ended(PHASE_TOTAL, 0.0);
        }
        assert_eq!(w.solves(), 3, "one solve per root span");
        assert_eq!(w.entries().len(), 1, "nested entry folded into outer");
        let cmc = w.entry("cmc").expect("outer entry tagged");
        assert_eq!(cmc.solves, 3);
        assert_eq!(cmc.benefits.high_watermark(), 10);
        assert_eq!(w.global().selections.windowed_sum(), 2, "window of 2");
        assert_eq!(w.rollovers(), 1, "3 solves through a 2-window");
    }

    #[test]
    fn solve_windows_tracks_degraded_and_untraced() {
        let mut w = SolveWindows::with_window(4);
        w.observe(
            None,
            SolveSample {
                selections: 1,
                benefits_computed: 2,
                degraded: true,
            },
        );
        w.observe(
            Some("cwsc"),
            SolveSample {
                selections: 3,
                benefits_computed: 4,
                degraded: false,
            },
        );
        assert_eq!(w.global().degraded_solves, 1);
        assert_eq!(w.global().degraded.windowed_sum(), 1);
        assert_eq!(w.global().degraded_rate(), 0.5);
        assert!(w.entry("untraced").is_some());
        assert!(w.entry("cwsc").is_some());
        assert_eq!(w.entry("nope"), None);
        assert_eq!(w.rollovers(), 0);
    }

    #[test]
    fn windows_are_equal_when_fed_identical_streams() {
        // The determinism contract in miniature: two windows fed the
        // same solve sequence compare equal, including quantile state.
        let drive = |w: &mut SolveWindows| {
            for i in 0..10u64 {
                w.observe(
                    Some(if i % 2 == 0 { "cmc" } else { "cwsc" }),
                    SolveSample {
                        selections: i,
                        benefits_computed: i * 7,
                        degraded: i == 3,
                    },
                );
            }
        };
        let mut a = SolveWindows::with_window(4);
        let mut b = SolveWindows::with_window(4);
        drive(&mut a);
        drive(&mut b);
        assert_eq!(a, b);
        assert_eq!(
            a.global().benefits_hist.quantile(0.99),
            b.global().benefits_hist.quantile(0.99)
        );
    }
}
