//! A minimal JSON value, writer, and parser.
//!
//! The build environment has no registry access (see `vendor/README.md`),
//! so everything that speaks JSON — the `BENCH_*.json` snapshot pipeline,
//! the soak timeline, and the `scwsc_serve` line-delimited wire protocol —
//! serializes by hand rather than through a JSON crate. The subset
//! implemented here is exactly what those consumers need: objects with
//! ordered keys, arrays, strings, finite numbers, booleans, and null.
//! Numbers are written with enough precision (`{:?}` on `f64`) to
//! round-trip exactly; `u64` counters round-trip losslessly up to 2^53,
//! far above any counter a benchmark run produces.
//!
//! Lived in `scwsc-bench` until the serving layer (DESIGN.md §17) needed
//! the same parser without depending on the bench crate.

use std::fmt::Write as _;

/// A parsed or to-be-written JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a number from a counter, panicking if it would lose
    /// precision (counters beyond 2^53 would indicate a bug anyway).
    pub fn from_u64(v: u64) -> Json {
        assert!(v <= (1u64 << 53), "counter {v} exceeds f64 precision");
        Json::Num(v as f64)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a counter, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's entries, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no whitespace — the JSONL form
    /// used by the soak timeline.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => self.write(out, 0),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                assert!(n.is_finite(), "JSON numbers must be finite, got {n}");
                if n.fract() == 0.0 && n.abs() < (1u64 << 53) as f64 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n:?}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Snapshots never contain surrogate pairs;
                            // map unpaired surrogates to the replacement
                            // character instead of failing.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // remaining continuation bytes are valid; re-decode
                    // from the start byte.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("bad number '{text}'")))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::Obj(vec![
            ("label".into(), Json::Str("seed".into())),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("reps".into(), Json::from_u64(5)),
            ("median_secs".into(), Json::Num(0.012345678901234567)),
            (
                "workloads".into(),
                Json::Arr(vec![
                    Json::Obj(vec![("name".into(), Json::Str("fig5/1000".into()))]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn round_trips_escapes_and_unicode() {
        let doc = Json::Obj(vec![(
            "s".into(),
            Json::Str("a\"b\\c\nd\te\u{1}λ—🦀".into()),
        )]);
        assert_eq!(Json::parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from_u64(12345).to_pretty(), "12345\n");
        assert_eq!(Json::Num(-3.0).to_pretty(), "-3\n");
        assert_eq!(Json::Num(0.5).to_pretty(), "0.5\n");
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 3, "b": [1.5, "x"], "c": -1}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("c").and_then(Json::as_u64), None, "negative");
        let arr = doc.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.5));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":}",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn compact_form_round_trips_on_one_line() {
        let doc = Json::Obj(vec![
            ("iter".into(), Json::from_u64(3)),
            ("p99".into(), Json::Num(1.5)),
            (
                "tags".into(),
                Json::Arr(vec![Json::Str("a\"b".into()), Json::Null]),
            ),
        ]);
        let line = doc.to_compact();
        assert!(!line.contains('\n'));
        assert_eq!(line, r#"{"iter":3,"p99":1.5,"tags":["a\"b",null]}"#);
        assert_eq!(Json::parse(&line).unwrap(), doc);
    }

    #[test]
    fn parses_scientific_notation() {
        assert_eq!(Json::parse("1.5e-3").unwrap().as_f64(), Some(0.0015));
    }
}
