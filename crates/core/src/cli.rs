//! Tiny `--key value` argument parser for the workspace binaries.
//!
//! No external CLI crate is in the approved dependency set, and the
//! binaries need only `--rows 100000 --seed 7`-style overrides, so this
//! does exactly that: `--key value` pairs and `--flag` booleans. Lived
//! in `scwsc-bench` until `scwsc_serve` (DESIGN.md §17) needed the same
//! parser without depending on the bench crate.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses from an iterator of raw arguments (skip the program name
    /// before calling, or use [`Args::from_env`]).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            if key.is_empty() {
                return Err("empty flag name".to_owned());
            }
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    out.values.insert(key.to_owned(), value);
                }
                _ => out.flags.push(key.to_owned()),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments.
    pub fn from_env() -> Result<Args, String> {
        Args::parse(std::env::args().skip(1))
    }

    /// A `--flag` with no value.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A string value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }

    /// A comma-separated list value with a default.
    pub fn get_list_or<T>(&self, name: &str, default: &[T]) -> Result<Vec<T>, String>
    where
        T: std::str::FromStr + Clone,
    {
        match self.values.get(name) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|part| {
                    part.trim()
                        .parse()
                        .map_err(|_| format!("--{name}: cannot parse {part:?}"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse(args.iter().map(|s| (*s).to_owned())).unwrap()
    }

    #[test]
    fn key_value_pairs() {
        let a = parse(&["--rows", "5000", "--seed", "7"]);
        assert_eq!(a.get_or("rows", 0usize).unwrap(), 5000);
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.get_or("missing", 42u32).unwrap(), 42);
    }

    #[test]
    fn flags() {
        let a = parse(&["--full", "--rows", "10"]);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
        assert_eq!(a.get_or("rows", 0usize).unwrap(), 10);
    }

    #[test]
    fn lists() {
        let a = parse(&["--sizes", "10, 20,30"]);
        assert_eq!(a.get_list_or("sizes", &[1usize]).unwrap(), vec![10, 20, 30]);
        assert_eq!(a.get_list_or("other", &[1usize, 2]).unwrap(), vec![1, 2]);
    }

    #[test]
    fn errors() {
        assert!(Args::parse(["positional".to_owned()]).is_err());
        let a = parse(&["--rows", "abc"]);
        assert!(a.get_or("rows", 0usize).is_err());
    }

    #[test]
    fn get_raw() {
        let a = parse(&["--name", "hello"]);
        assert_eq!(a.get("name"), Some("hello"));
        assert_eq!(a.get("other"), None);
    }
}
