//! Resilient solve engine: deadlines, cooperative cancellation, degraded
//! outcomes, and deterministic fault injection (DESIGN.md §12).
//!
//! Every greedy loop in this workspace makes monotone progress — a prefix
//! of its selections is itself a usable partial answer. This module turns
//! that into a degradation ladder:
//!
//! * [`Deadline`] — a wall-clock limit and/or a deterministic work-tick
//!   budget, checked cooperatively at round boundaries via
//!   [`checkpoint`](Deadline::checkpoint). The tick budget counts solver
//!   *decisions* (selection attempts, heap pops, sweep rounds), not time,
//!   so a `max_ticks` run expires at the same point on every machine and
//!   every thread count.
//! * [`SolveOutcome`] — `Complete(T)` or [`Degraded`], the latter carrying
//!   the best-so-far partial solution plus a [`Certificate`] that
//!   [`verify_certificate`](crate::solution::verify_certificate)
//!   independently re-checks.
//! * [`EngineError`] — structured failure: an ordinary [`SolveError`] or a
//!   contained panic ([`EngineError::Panicked`]). Deadline-aware solvers
//!   never let a worker panic escape as a panic.
//! * [`FaultPlan`] (behind the `fault-inject` feature) — a seeded,
//!   deterministic injector: worker panic at tick N, cancellation at tick
//!   M, forced guess failure. Property tests use it to assert that no
//!   input + fault schedule ever panics, hangs, or yields a certificate
//!   that fails verification.
//!
//! # Determinism contract
//!
//! Speculative budget guessing runs guesses on pool workers, which would
//! interleave their ticks nondeterministically. Deadline-aware solvers
//! therefore disable cross-guess speculation whenever the deadline is
//! *tick-addressed* ([`Deadline::tick_deterministic`]): guesses run in
//! serial order (inner benefit scans still parallelize — scans do not
//! tick), so the tick stream, the expiry point, and the outcome
//! classification are identical for `Threads(1)` and `Threads(N)`.
//! Wall-clock-only deadlines keep speculation and trade that parity for
//! throughput.

use crate::parallel::CancelToken;
use crate::solution::SolveError;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solve was degraded (or a [`Deadline::checkpoint`] call failed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DegradeReason {
    /// The wall-clock deadline passed.
    WallClock,
    /// The deterministic work-tick budget was consumed.
    TickBudget,
    /// The deadline's [`CancelToken`] was cancelled externally.
    Cancelled,
}

impl DegradeReason {
    /// Stable snake_case name used in traces and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeReason::WallClock => "wall_clock",
            DegradeReason::TickBudget => "tick_budget",
            DegradeReason::Cancelled => "cancelled",
        }
    }

    fn code(self) -> u8 {
        match self {
            DegradeReason::WallClock => 1,
            DegradeReason::TickBudget => 2,
            DegradeReason::Cancelled => 3,
        }
    }

    fn from_code(code: u8) -> Option<DegradeReason> {
        match code {
            1 => Some(DegradeReason::WallClock),
            2 => Some(DegradeReason::TickBudget),
            3 => Some(DegradeReason::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A cooperative wall-clock and/or work-tick budget threaded through the
/// deadline-aware solver entry points (`*_within`).
///
/// Solvers call [`checkpoint`](Deadline::checkpoint) once per unit of
/// decision work; the first failing checkpoint makes the solver return its
/// partial progress as [`SolveOutcome::Degraded`]. An unbounded deadline
/// ([`Deadline::unbounded`]) never expires and costs one relaxed atomic
/// increment per checkpoint.
#[derive(Debug, Default)]
pub struct Deadline {
    wall: Option<Instant>,
    wall_budget: Option<Duration>,
    max_ticks: Option<u64>,
    // Shared (not inline) so a detached TickProbe can watch progress
    // from another thread while the solver owns the deadline.
    ticks: Arc<AtomicU64>,
    token: CancelToken,
    reason: AtomicU8,
    #[cfg(feature = "fault-inject")]
    fault: Option<FaultPlan>,
}

impl Deadline {
    /// A deadline that never expires (but can still be
    /// [`cancel`](Deadline::cancel)led).
    pub fn unbounded() -> Deadline {
        Deadline::default()
    }

    /// Expire once `budget` of wall-clock time has elapsed from now.
    pub fn with_wall_clock(mut self, budget: Duration) -> Deadline {
        self.wall = Some(Instant::now() + budget);
        self.wall_budget = Some(budget);
        self
    }

    /// Expire after `max_ticks` checkpoints — a deterministic work budget
    /// independent of machine speed and thread count.
    pub fn with_tick_budget(mut self, max_ticks: u64) -> Deadline {
        self.max_ticks = Some(max_ticks);
        self
    }

    /// Attach a deterministic fault-injection plan (tests only).
    #[cfg(feature = "fault-inject")]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Deadline {
        self.fault = Some(plan);
        self
    }

    /// Requests cooperative cancellation; the next checkpoint fails with
    /// [`DegradeReason::Cancelled`]. Idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.expire(DegradeReason::Cancelled);
    }

    /// The underlying token, for wiring into pre-existing cancellation
    /// plumbing. Cancelling it directly is equivalent to
    /// [`cancel`](Deadline::cancel).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.token
    }

    /// Checkpoints consumed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// A detached handle onto this deadline's tick counter, readable from
    /// any thread for as long as the probe lives — the liveness
    /// [`Watchdog`](crate::telemetry::watchdog::Watchdog) polls one to
    /// tell "stalled" apart from "working but quiet". Reading a probe
    /// never consumes ticks.
    pub fn tick_probe(&self) -> TickProbe {
        TickProbe {
            ticks: Arc::clone(&self.ticks),
        }
    }

    /// The tick budget, when one was set.
    pub fn max_ticks(&self) -> Option<u64> {
        self.max_ticks
    }

    /// The wall-clock budget this deadline was created with, when set.
    pub fn wall_budget(&self) -> Option<Duration> {
        self.wall_budget
    }

    /// Wall-clock time left before expiry (zero once past the deadline);
    /// `None` when no wall-clock budget was set. The basis of the SLO
    /// headroom gauge exported by
    /// [`SloGauges`](crate::telemetry::SloGauges).
    pub fn wall_remaining(&self) -> Option<Duration> {
        self.wall
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }

    /// True when expiry depends only on the tick stream (a tick budget is
    /// set, or an attached fault plan triggers on ticks) — the condition
    /// under which deadline-aware solvers run guesses serially so the
    /// outcome is identical for every thread count.
    pub fn tick_deterministic(&self) -> bool {
        if self.max_ticks.is_some() {
            return true;
        }
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.fault {
            return plan.tick_addressed();
        }
        false
    }

    /// Consumes one tick of work and reports whether the solver may
    /// continue. The first failure latches: every later checkpoint fails
    /// with the same reason.
    ///
    /// # Panics
    /// Only under the `fault-inject` feature, when the attached
    /// [`FaultPlan`] schedules a panic at this tick — callers contain such
    /// panics with `catch_unwind`.
    pub fn checkpoint(&self) -> Result<(), DegradeReason> {
        let t = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.fault {
            if plan.cancel_due(t) {
                self.expire(DegradeReason::Cancelled);
            }
            plan.maybe_panic(t);
            plan.maybe_stall(t);
        }
        if let Some(max) = self.max_ticks {
            if t > max {
                self.expire(DegradeReason::TickBudget);
            }
        }
        if let Some(wall) = self.wall {
            if Instant::now() >= wall {
                self.expire(DegradeReason::WallClock);
            }
        }
        match self.expired() {
            Some(reason) => Err(reason),
            None => Ok(()),
        }
    }

    /// Non-ticking probe: the latched expiry reason, if any. Cheap enough
    /// for coarse boundaries that should not consume tick budget.
    pub fn expired(&self) -> Option<DegradeReason> {
        if self.token.is_cancelled() {
            // A token cancelled behind our back (via `cancel_token`) has no
            // recorded reason; report it as an external cancellation.
            Some(
                DegradeReason::from_code(self.reason.load(Ordering::Relaxed))
                    .unwrap_or(DegradeReason::Cancelled),
            )
        } else {
            None
        }
    }

    /// Injects a forced guess failure when the fault plan schedules one
    /// for `guess_index` (1-based serial guess number). No-op without the
    /// `fault-inject` feature.
    #[cfg(feature = "fault-inject")]
    pub fn fault_guess(&self, guess_index: u64) {
        if let Some(plan) = &self.fault {
            if plan.guess_should_panic(guess_index) {
                panic!("injected fault: guess {guess_index} failure");
            }
        }
    }

    /// Injects a forced guess failure (fault-injection builds only); this
    /// build compiles it away.
    #[cfg(not(feature = "fault-inject"))]
    #[inline]
    pub fn fault_guess(&self, _guess_index: u64) {}

    /// First expiry reason wins; later causes are ignored.
    fn expire(&self, reason: DegradeReason) {
        let _ =
            self.reason
                .compare_exchange(0, reason.code(), Ordering::Relaxed, Ordering::Relaxed);
        self.token.cancel();
    }
}

/// A read-only, thread-detachable view of a [`Deadline`]'s tick counter
/// (obtained via [`Deadline::tick_probe`]). The liveness watchdog polls
/// one to distinguish a solver that stopped emitting observer events but
/// keeps passing `checkpoint()`s (quiet progress) from one that stopped
/// ticking entirely (a stall).
#[derive(Debug, Clone)]
pub struct TickProbe {
    ticks: Arc<AtomicU64>,
}

impl TickProbe {
    /// Checkpoints the probed deadline has consumed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

/// A deterministic, seeded fault injector attached to a [`Deadline`].
///
/// Compiled only under the `fault-inject` feature so production builds
/// carry no injection branches. Tick-addressed faults (panic/cancel at
/// tick N) make the deadline [`tick_deterministic`](Deadline::tick_deterministic),
/// which disables speculation; guess-addressed faults (panic on guess i)
/// keep speculation enabled and still fire deterministically, because
/// serial guess indices are thread-count-invariant.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Default)]
pub struct FaultPlan {
    panic_at_tick: Option<u64>,
    cancel_at_tick: Option<u64>,
    /// One-shot: the first attempt of this guess panics; a retry succeeds.
    panic_guess_once: Option<u64>,
    /// Persistent: every attempt of this guess panics; the retry fails too
    /// and the solver reports [`EngineError::Panicked`].
    fail_guess: Option<u64>,
    /// One-shot `(tick, millis)`: the first checkpoint with tick ≥ `tick`
    /// sleeps `millis` before returning — a liveness stall, not an
    /// outcome change (the solve completes normally afterwards).
    stall_at_tick: Option<(u64, u64)>,
    /// Service layer `(request, millis)`: reading (1-based) request
    /// `request` stalls `millis` mid-read — a slow client whose bytes
    /// trickle in. The wait counts as queue time, so the request's solve
    /// deadline shrinks accordingly.
    slow_read: Option<(u64, u64)>,
    /// Service layer: the connection drops mid-request — after (1-based)
    /// request `request` is read, before any response byte is written.
    disconnect_at: Option<u64>,
    panic_fired: std::sync::atomic::AtomicBool,
    guess_panic_fired: std::sync::atomic::AtomicBool,
    stall_fired: std::sync::atomic::AtomicBool,
}

#[cfg(feature = "fault-inject")]
impl FaultPlan {
    /// An empty plan: injects nothing.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Panic (once) at the first checkpoint with tick ≥ `tick`.
    pub fn panic_at_tick(mut self, tick: u64) -> FaultPlan {
        self.panic_at_tick = Some(tick);
        self
    }

    /// Cancel the deadline at the first checkpoint with tick ≥ `tick`.
    pub fn cancel_at_tick(mut self, tick: u64) -> FaultPlan {
        self.cancel_at_tick = Some(tick);
        self
    }

    /// Panic on the first attempt of (1-based) guess `index`; retries
    /// succeed.
    pub fn panic_guess_once(mut self, index: u64) -> FaultPlan {
        self.panic_guess_once = Some(index);
        self
    }

    /// Panic on every attempt of (1-based) guess `index` — a persistent
    /// fault the retry cannot recover from.
    pub fn fail_guess(mut self, index: u64) -> FaultPlan {
        self.fail_guess = Some(index);
        self
    }

    /// Sleep `millis` (once) at the first checkpoint with tick ≥ `tick` —
    /// a pure liveness stall for exercising the watchdog. Deliberately
    /// *not* tick-addressed for speculation purposes: a sleep changes no
    /// outcome, so it must not force serial guessing.
    pub fn stall_at_tick(mut self, tick: u64, millis: u64) -> FaultPlan {
        self.stall_at_tick = Some((tick, millis));
        self
    }

    /// Service-layer fault: reading (1-based) request `request` stalls
    /// `millis` mid-read, simulating a slow client. Consumed by
    /// `scwsc_serve`'s connection loop, not by the solve engine.
    pub fn slow_read(mut self, request: u64, millis: u64) -> FaultPlan {
        self.slow_read = Some((request, millis));
        self
    }

    /// Service-layer fault: the connection is dropped after (1-based)
    /// request `request` is read and before any response is written.
    /// Consumed by `scwsc_serve`'s connection loop.
    pub fn disconnect_at(mut self, request: u64) -> FaultPlan {
        self.disconnect_at = Some(request);
        self
    }

    /// The injected read stall for (1-based) request `seq`, if any.
    pub fn slow_read_before(&self, seq: u64) -> Option<Duration> {
        self.slow_read
            .filter(|&(n, _)| n == seq)
            .map(|(_, millis)| Duration::from_millis(millis))
    }

    /// Whether the connection should drop mid-request `seq` (1-based).
    pub fn disconnects(&self, seq: u64) -> bool {
        self.disconnect_at == Some(seq)
    }

    /// A deterministic pseudo-random plan: the same seed always yields the
    /// same fault schedule, so property-test failures replay exactly.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let choice = next();
        let mut plan = FaultPlan::new();
        if choice & 1 != 0 {
            plan = plan.cancel_at_tick(next() % 64);
        }
        if choice & 2 != 0 {
            plan = plan.panic_at_tick(next() % 64);
        }
        if choice & 4 != 0 {
            plan = plan.panic_guess_once(1 + next() % 4);
        } else if choice & 8 != 0 {
            plan = plan.fail_guess(1 + next() % 4);
        }
        plan
    }

    /// Whether any fault triggers on the tick stream (disables
    /// speculation; see module docs).
    pub fn tick_addressed(&self) -> bool {
        self.panic_at_tick.is_some() || self.cancel_at_tick.is_some()
    }

    fn cancel_due(&self, tick: u64) -> bool {
        self.cancel_at_tick.is_some_and(|n| tick >= n)
    }

    fn maybe_panic(&self, tick: u64) {
        if let Some(n) = self.panic_at_tick {
            if tick >= n && !self.panic_fired.swap(true, Ordering::SeqCst) {
                panic!("injected fault: worker panic at tick {tick}");
            }
        }
    }

    fn maybe_stall(&self, tick: u64) {
        if let Some((n, millis)) = self.stall_at_tick {
            if tick >= n && !self.stall_fired.swap(true, Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(millis));
            }
        }
    }

    fn guess_should_panic(&self, index: u64) -> bool {
        if self.fail_guess == Some(index) {
            return true;
        }
        self.panic_guess_once == Some(index) && !self.guess_panic_fired.swap(true, Ordering::SeqCst)
    }
}

/// A partial answer's self-description, verified independently by
/// [`verify_certificate`](crate::solution::verify_certificate): the solver
/// claims what it achieved before the deadline, and the verifier recomputes
/// every claim from the raw set system.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Certificate {
    /// Number of sets/patterns in the partial solution.
    pub sets_used: usize,
    /// Elements (or progress units) covered when the deadline hit.
    pub covered: usize,
    /// The coverage target the solver was chasing (`ŝ·n`, discounted for
    /// CMC). Always strictly greater than `covered` for an honest degrade.
    pub target: usize,
    /// Total cost of the partial solution.
    pub total_cost: f64,
    /// CMC-family only: indices of cost levels whose quota was fully
    /// consumed before expiry (ascending). Empty for single-round solvers.
    pub quotas_exhausted: Vec<usize>,
    /// Work ticks consumed at expiry.
    pub ticks: u64,
    /// Why the solve degraded.
    pub reason: DegradeReason,
}

impl Certificate {
    /// Elements still missing toward the target.
    pub fn coverage_deficit(&self) -> usize {
        self.target.saturating_sub(self.covered)
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degraded ({}): {} sets, cost {}, covered {}/{} (deficit {}), \
             {} level quotas exhausted, {} ticks",
            self.reason,
            self.sets_used,
            self.total_cost,
            self.covered,
            self.target,
            self.coverage_deficit(),
            self.quotas_exhausted.len(),
            self.ticks
        )
    }
}

/// A degraded result: the best-so-far partial solution plus its
/// [`Certificate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Degraded<T> {
    /// The monotone greedy prefix accumulated before expiry.
    pub partial: T,
    /// The solver's claims about that prefix.
    pub certificate: Certificate,
}

/// What a deadline-aware solve produced.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveOutcome<T> {
    /// The solver finished normally; the value is exactly what the
    /// non-deadline entry point would have returned.
    Complete(T),
    /// The deadline expired first; the partial prefix and certificate
    /// describe how far it got.
    Degraded(Degraded<T>),
}

impl<T> SolveOutcome<T> {
    /// True for [`SolveOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, SolveOutcome::Complete(_))
    }

    /// True for [`SolveOutcome::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, SolveOutcome::Degraded(_))
    }

    /// The contained value, complete or partial.
    pub fn value(&self) -> &T {
        match self {
            SolveOutcome::Complete(v) => v,
            SolveOutcome::Degraded(d) => &d.partial,
        }
    }

    /// The certificate, when degraded.
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            SolveOutcome::Complete(_) => None,
            SolveOutcome::Degraded(d) => Some(&d.certificate),
        }
    }

    /// Unwraps a complete outcome.
    ///
    /// # Panics
    /// Panics with `msg` (and the certificate) when degraded.
    pub fn expect_complete(self, msg: &str) -> T {
        match self {
            SolveOutcome::Complete(v) => v,
            SolveOutcome::Degraded(d) => panic!("{msg}: {}", d.certificate),
        }
    }
}

/// Structured failure of a deadline-aware solve.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// An ordinary infeasibility error from the underlying solver.
    Solve(SolveError),
    /// A solver job panicked and (where a retry applies) panicked again;
    /// the payload message is preserved. The engine never re-raises.
    Panicked(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Solve(e) => e.fmt(f),
            EngineError::Panicked(msg) => write!(f, "solver panicked: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SolveError> for EngineError {
    fn from(e: SolveError) -> EngineError {
        EngineError::Solve(e)
    }
}

/// Best-effort extraction of a panic payload's message (`&str` or
/// `String` payloads; anything else gets a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::unbounded();
        for _ in 0..1000 {
            assert_eq!(d.checkpoint(), Ok(()));
        }
        assert_eq!(d.ticks(), 1000);
        assert_eq!(d.expired(), None);
        assert!(!d.tick_deterministic());
    }

    #[test]
    fn tick_budget_expires_deterministically() {
        let d = Deadline::unbounded().with_tick_budget(3);
        assert!(d.tick_deterministic());
        assert_eq!(d.checkpoint(), Ok(()));
        assert_eq!(d.checkpoint(), Ok(()));
        assert_eq!(d.checkpoint(), Ok(()));
        assert_eq!(d.checkpoint(), Err(DegradeReason::TickBudget));
        // Latched: every later checkpoint fails the same way.
        assert_eq!(d.checkpoint(), Err(DegradeReason::TickBudget));
        assert_eq!(d.expired(), Some(DegradeReason::TickBudget));
    }

    #[test]
    fn zero_tick_budget_fails_first_checkpoint() {
        let d = Deadline::unbounded().with_tick_budget(0);
        assert_eq!(d.checkpoint(), Err(DegradeReason::TickBudget));
    }

    #[test]
    fn elapsed_wall_clock_expires() {
        let d = Deadline::unbounded().with_wall_clock(Duration::ZERO);
        assert!(!d.tick_deterministic());
        assert_eq!(d.checkpoint(), Err(DegradeReason::WallClock));
    }

    #[test]
    fn cancellation_latches_and_wins_when_first() {
        let d = Deadline::unbounded().with_tick_budget(100);
        assert_eq!(d.checkpoint(), Ok(()));
        d.cancel();
        assert_eq!(d.checkpoint(), Err(DegradeReason::Cancelled));
        assert_eq!(d.expired(), Some(DegradeReason::Cancelled));
    }

    #[test]
    fn raw_token_cancellation_reports_cancelled() {
        let d = Deadline::unbounded();
        d.cancel_token().cancel();
        assert_eq!(d.checkpoint(), Err(DegradeReason::Cancelled));
    }

    #[test]
    fn first_expiry_reason_wins() {
        let d = Deadline::unbounded().with_tick_budget(1);
        assert_eq!(d.checkpoint(), Ok(()));
        assert_eq!(d.checkpoint(), Err(DegradeReason::TickBudget));
        d.cancel(); // too late: reason already latched
        assert_eq!(d.checkpoint(), Err(DegradeReason::TickBudget));
    }

    #[test]
    fn deadline_budget_accessors() {
        let d = Deadline::unbounded();
        assert_eq!(d.max_ticks(), None);
        assert_eq!(d.wall_budget(), None);
        assert_eq!(d.wall_remaining(), None);

        let d = Deadline::unbounded()
            .with_tick_budget(9)
            .with_wall_clock(Duration::from_secs(3600));
        assert_eq!(d.max_ticks(), Some(9));
        assert_eq!(d.wall_budget(), Some(Duration::from_secs(3600)));
        let rem = d.wall_remaining().expect("wall budget set");
        assert!(rem <= Duration::from_secs(3600));
        assert!(rem > Duration::from_secs(3500), "just created");

        let expired = Deadline::unbounded().with_wall_clock(Duration::ZERO);
        assert_eq!(expired.wall_remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn tick_probe_sees_progress_without_consuming_it() {
        let d = Deadline::unbounded().with_tick_budget(5);
        let probe = d.tick_probe();
        assert_eq!(probe.ticks(), 0);
        assert_eq!(d.checkpoint(), Ok(()));
        assert_eq!(d.checkpoint(), Ok(()));
        assert_eq!(probe.ticks(), 2, "probe observes checkpoints");
        for _ in 0..10 {
            let _ = probe.ticks(); // reads never tick
        }
        assert_eq!(d.ticks(), 2);
        drop(d);
        assert_eq!(probe.ticks(), 2, "probe outlives the deadline");
    }

    #[test]
    fn degrade_reason_names() {
        assert_eq!(DegradeReason::WallClock.as_str(), "wall_clock");
        assert_eq!(DegradeReason::TickBudget.as_str(), "tick_budget");
        assert_eq!(DegradeReason::Cancelled.to_string(), "cancelled");
        for r in [
            DegradeReason::WallClock,
            DegradeReason::TickBudget,
            DegradeReason::Cancelled,
        ] {
            assert_eq!(DegradeReason::from_code(r.code()), Some(r));
        }
        assert_eq!(DegradeReason::from_code(0), None);
    }

    #[test]
    fn outcome_accessors() {
        let complete: SolveOutcome<u32> = SolveOutcome::Complete(7);
        assert!(complete.is_complete());
        assert_eq!(*complete.value(), 7);
        assert!(complete.certificate().is_none());
        assert_eq!(complete.expect_complete("must finish"), 7);

        let cert = Certificate {
            sets_used: 2,
            covered: 5,
            target: 9,
            total_cost: 3.5,
            quotas_exhausted: vec![0],
            ticks: 11,
            reason: DegradeReason::TickBudget,
        };
        assert_eq!(cert.coverage_deficit(), 4);
        let text = cert.to_string();
        assert!(text.contains("tick_budget"), "{text}");
        assert!(text.contains("5/9"), "{text}");
        let degraded: SolveOutcome<u32> = SolveOutcome::Degraded(Degraded {
            partial: 3,
            certificate: cert,
        });
        assert!(degraded.is_degraded());
        assert_eq!(*degraded.value(), 3);
        assert_eq!(degraded.certificate().unwrap().ticks, 11);
    }

    #[test]
    #[should_panic(expected = "must finish")]
    fn expect_complete_panics_on_degraded() {
        let degraded: SolveOutcome<u32> = SolveOutcome::Degraded(Degraded {
            partial: 0,
            certificate: Certificate {
                sets_used: 0,
                covered: 0,
                target: 1,
                total_cost: 0.0,
                quotas_exhausted: Vec::new(),
                ticks: 0,
                reason: DegradeReason::Cancelled,
            },
        });
        degraded.expect_complete("must finish");
    }

    #[test]
    fn engine_error_display_and_from() {
        let e: EngineError = SolveError::BudgetExhausted.into();
        assert!(e.to_string().contains("budget"));
        let p = EngineError::Panicked("boom".to_owned());
        assert!(p.to_string().contains("boom"));
    }

    #[test]
    fn panic_message_extracts_strings() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(payload.as_ref()), "static str");
        let payload: Box<dyn std::any::Any + Send> = Box::new("owned".to_owned());
        assert_eq!(panic_message(payload.as_ref()), "owned");
        let payload: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert!(panic_message(payload.as_ref()).contains("non-string"));
    }

    #[cfg(feature = "fault-inject")]
    mod fault {
        use super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        #[test]
        fn panic_at_tick_fires_once() {
            let d = Deadline::unbounded().with_fault_plan(FaultPlan::new().panic_at_tick(2));
            assert!(d.tick_deterministic(), "tick-addressed fault");
            assert_eq!(d.checkpoint(), Ok(()));
            let err = catch_unwind(AssertUnwindSafe(|| d.checkpoint()));
            assert!(err.is_err(), "tick 2 panics");
            // One-shot: the latch is consumed; the run continues.
            assert_eq!(d.checkpoint(), Ok(()));
        }

        #[test]
        fn cancel_at_tick_degrades() {
            let d = Deadline::unbounded().with_fault_plan(FaultPlan::new().cancel_at_tick(3));
            assert_eq!(d.checkpoint(), Ok(()));
            assert_eq!(d.checkpoint(), Ok(()));
            assert_eq!(d.checkpoint(), Err(DegradeReason::Cancelled));
        }

        #[test]
        fn guess_faults_do_not_force_serial_guessing() {
            let d = Deadline::unbounded().with_fault_plan(FaultPlan::new().panic_guess_once(2));
            assert!(
                !d.tick_deterministic(),
                "guess-addressed faults keep speculation"
            );
            assert_eq!(d.checkpoint(), Ok(()));
            d.fault_guess(1); // wrong index: no panic
            let err = catch_unwind(AssertUnwindSafe(|| d.fault_guess(2)));
            assert!(err.is_err(), "guess 2 panics once");
            d.fault_guess(2); // latch consumed: the retry proceeds
        }

        #[test]
        fn fail_guess_is_persistent() {
            let d = Deadline::unbounded().with_fault_plan(FaultPlan::new().fail_guess(1));
            for _ in 0..2 {
                let err = catch_unwind(AssertUnwindSafe(|| d.fault_guess(1)));
                assert!(err.is_err(), "every attempt panics");
            }
        }

        #[test]
        fn stall_fires_once_and_changes_no_outcome() {
            let d = Deadline::unbounded().with_fault_plan(FaultPlan::new().stall_at_tick(2, 30));
            assert!(!d.tick_deterministic(), "a sleep is not tick-addressed");
            assert_eq!(d.checkpoint(), Ok(()));
            let before = Instant::now();
            assert_eq!(d.checkpoint(), Ok(()), "stalled but not degraded");
            assert!(
                before.elapsed() >= Duration::from_millis(30),
                "tick 2 slept"
            );
            let before = Instant::now();
            assert_eq!(d.checkpoint(), Ok(()));
            assert!(
                before.elapsed() < Duration::from_millis(30),
                "one-shot: later ticks do not sleep"
            );
        }

        #[test]
        fn from_seed_is_deterministic() {
            for seed in 0..32u64 {
                let a = format!("{:?}", FaultPlan::from_seed(seed));
                let b = format!("{:?}", FaultPlan::from_seed(seed));
                assert_eq!(a, b, "seed {seed}");
            }
        }
    }
}
