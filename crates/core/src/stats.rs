//! Instrumentation counters behind the paper's Figure 6.
//!
//! "Patterns considered" in the evaluation counts every set/pattern whose
//! (marginal) benefit an algorithm computed; for CMC that is summed over
//! all budget guesses. Algorithms thread a [`Stats`] through their run so
//! the experiment harness can report the same metric.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters accumulated during one algorithm run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Sets/patterns whose (marginal) benefit was computed, summed over all
    /// budget guesses (the paper's Fig. 6 y-axis).
    pub considered: u64,
    /// Number of budget values `B` tried (CMC only; 1 for CWSC).
    pub budget_guesses: u32,
    /// Number of sets selected into candidate solutions, including
    /// selections from discarded budget guesses.
    pub selections: u32,
    /// Wall-clock time of the run, filled by the harness.
    #[serde(skip)]
    pub elapsed: Duration,
}

impl Stats {
    /// Fresh, zeroed counters.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Records that `count` more sets/patterns had benefits computed.
    #[inline]
    pub fn consider(&mut self, count: u64) {
        self.considered += count;
    }

    /// Records the start of a budget-guess round.
    #[inline]
    pub fn new_guess(&mut self) {
        self.budget_guesses += 1;
    }

    /// Records one greedy selection.
    #[inline]
    pub fn select(&mut self) {
        self.selections += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = Stats::new();
        assert_eq!(s.considered, 0);
        assert_eq!(s.budget_guesses, 0);
        assert_eq!(s.selections, 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.consider(10);
        s.consider(5);
        s.new_guess();
        s.new_guess();
        s.select();
        assert_eq!(s.considered, 15);
        assert_eq!(s.budget_guesses, 2);
        assert_eq!(s.selections, 1);
    }
}
