//! Instrumentation counters behind the paper's Figure 6.
//!
//! "Patterns considered" in the evaluation counts every set/pattern whose
//! (marginal) benefit an algorithm computed; for CMC that is summed over
//! all budget guesses. [`Stats`] is the classic three-counter view of a
//! run, kept as a thin adapter over the richer
//! [`Observer`](crate::telemetry::Observer) event stream: solvers emit
//! events, and a `&mut Stats` passed as the observer aggregates them into
//! the same counters the experiment harness always reported.

use crate::telemetry::{Observer, PHASE_TOTAL};

/// Counters accumulated during one algorithm run.
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Stats {
    /// Sets/patterns whose (marginal) benefit was computed, summed over all
    /// budget guesses (the paper's Fig. 6 y-axis).
    pub considered: u64,
    /// Number of budget values `B` tried (CMC; 1 for single-round solvers).
    pub budget_guesses: u32,
    /// Number of sets selected into candidate solutions, including
    /// selections from discarded budget guesses.
    pub selections: u32,
    /// Wall-clock seconds of the solver's `"total"` phase span, recorded by
    /// the solver itself (not the harness), so it serializes with the rest.
    #[cfg_attr(feature = "serde", serde(default))]
    pub elapsed_secs: f64,
}

impl Stats {
    /// Fresh, zeroed counters.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Records that `count` more sets/patterns had benefits computed.
    #[inline]
    pub fn consider(&mut self, count: u64) {
        self.considered += count;
    }

    /// Records the start of a budget-guess round.
    #[inline]
    pub fn new_guess(&mut self) {
        self.budget_guesses += 1;
    }

    /// Records one greedy selection.
    #[inline]
    pub fn select(&mut self) {
        self.selections += 1;
    }
}

impl Observer for Stats {
    #[inline]
    fn guess_started(&mut self, _budget: Option<f64>) {
        self.new_guess();
    }

    #[inline]
    fn set_selected(&mut self, _id: u64, _marginal_benefit: u64, _cost: f64) {
        self.select();
    }

    #[inline]
    fn benefit_computed(&mut self, count: u64) {
        self.consider(count);
    }

    #[inline]
    fn phase_ended(&mut self, name: &'static str, seconds: f64) {
        if name == PHASE_TOTAL {
            self.elapsed_secs = seconds;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = Stats::new();
        assert_eq!(s.considered, 0);
        assert_eq!(s.budget_guesses, 0);
        assert_eq!(s.selections, 0);
        assert_eq!(s.elapsed_secs, 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.consider(10);
        s.consider(5);
        s.new_guess();
        s.new_guess();
        s.select();
        assert_eq!(s.considered, 15);
        assert_eq!(s.budget_guesses, 2);
        assert_eq!(s.selections, 1);
    }

    #[test]
    fn observer_events_feed_the_same_counters() {
        let mut s = Stats::new();
        s.benefit_computed(7);
        s.guess_started(Some(3.0));
        s.guess_started(None);
        s.set_selected(4, 2, 1.0);
        s.phase_ended("inner", 9.0);
        s.phase_ended(PHASE_TOTAL, 0.5);
        assert_eq!(s.considered, 7);
        assert_eq!(s.budget_guesses, 2);
        assert_eq!(s.selections, 1);
        assert_eq!(s.elapsed_secs, 0.5, "only the total span is kept");
    }
}
