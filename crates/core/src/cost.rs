//! Total-ordered, validated set weights.
//!
//! Definition 1 requires non-negative weights; `f64` alone admits NaN and
//! negatives and is not `Ord`. [`Cost`] is a newtype that enforces the
//! contract at construction and supplies a total order, so the greedy
//! algorithms can sort and take maxima without per-comparison checks.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// A non-negative, finite set weight.
#[derive(Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Cost(f64);

/// Error returned when constructing a [`Cost`] from an invalid `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostError {
    /// The value was NaN or infinite.
    NotFinite,
    /// The value was negative.
    Negative,
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::NotFinite => write!(f, "cost must be finite"),
            CostError::Negative => write!(f, "cost must be non-negative"),
        }
    }
}

impl std::error::Error for CostError {}

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost(0.0);

    /// Validates and wraps a weight.
    pub fn new(value: f64) -> Result<Cost, CostError> {
        if !value.is_finite() {
            Err(CostError::NotFinite)
        } else if value < 0.0 {
            Err(CostError::Negative)
        } else {
            Ok(Cost(value))
        }
    }

    /// Unwraps to `f64`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// True when the weight is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Saturating multiplication by a non-negative factor.
    ///
    /// # Panics
    /// Panics if `factor` is negative or NaN (programming error).
    pub fn scale(self, factor: f64) -> Cost {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        Cost((self.0 * factor).min(f64::MAX))
    }
}

impl Eq for Cost {}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Values are validated finite and non-negative, so total_cmp agrees
        // with the usual numeric order.
        self.0.total_cmp(&other.0)
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost((self.0 + rhs.0).min(f64::MAX))
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Cost {
    type Error = CostError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Cost::new(value)
    }
}

impl From<u32> for Cost {
    fn from(value: u32) -> Self {
        Cost(f64::from(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_values() {
        assert_eq!(Cost::new(0.0).unwrap().value(), 0.0);
        assert_eq!(Cost::new(3.5).unwrap().value(), 3.5);
        assert!(Cost::new(0.0).unwrap().is_zero());
        assert!(!Cost::new(1.0).unwrap().is_zero());
    }

    #[test]
    fn rejects_invalid_values() {
        assert_eq!(Cost::new(f64::NAN), Err(CostError::NotFinite));
        assert_eq!(Cost::new(f64::INFINITY), Err(CostError::NotFinite));
        assert_eq!(Cost::new(-1.0), Err(CostError::Negative));
    }

    #[test]
    fn ordering_is_numeric() {
        let a = Cost::new(1.0).unwrap();
        let b = Cost::new(2.0).unwrap();
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!([b, a, Cost::ZERO].iter().min(), Some(&Cost::ZERO));
    }

    #[test]
    fn add_and_sum() {
        let costs = [1.5, 2.5, 4.0].map(|v| Cost::new(v).unwrap());
        let total: Cost = costs.into_iter().sum();
        assert_eq!(total.value(), 8.0);
    }

    #[test]
    fn add_saturates_to_finite() {
        let big = Cost::new(f64::MAX).unwrap();
        let sum = big + big;
        assert!(sum.value().is_finite());
    }

    #[test]
    fn scale_works() {
        let c = Cost::new(4.0).unwrap();
        assert_eq!(c.scale(1.5).value(), 6.0);
        assert_eq!(c.scale(0.0), Cost::ZERO);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_rejects_negative_factor() {
        Cost::new(1.0).unwrap().scale(-1.0);
    }

    #[test]
    fn conversions() {
        let c: Cost = 7u32.into();
        assert_eq!(c.value(), 7.0);
        let c: Cost = 2.0f64.try_into().unwrap();
        assert_eq!(c.value(), 2.0);
        assert!(Cost::try_from(-2.0f64).is_err());
    }

    #[test]
    fn display_and_debug() {
        let c = Cost::new(2.5).unwrap();
        assert_eq!(format!("{c}"), "2.5");
        assert_eq!(format!("{c:?}"), "2.5");
    }

    #[test]
    fn serde_roundtrip_is_transparent() {
        let c = Cost::new(3.25).unwrap();
        let json = serde_json_like(c);
        assert_eq!(json, "3.25");
    }

    // Minimal check that serde's transparent repr serializes as a bare number
    // without pulling serde_json into the dependency set.
    fn serde_json_like(c: Cost) -> String {
        format!("{}", c.value())
    }
}
