//! The input model: a collection of weighted sets over `n` elements.
//!
//! Elements are dense ids `0..n`; each set stores a sorted, deduplicated
//! posting list of element ids plus its [`Cost`]. Definition 1 of the paper
//! additionally requires the collection to contain a set covering all
//! elements (for patterns, the all-`ALL` pattern) so a feasible solution
//! always exists; [`SetSystem::has_universe_set`] exposes that check and the
//! algorithms rely on it for their termination guarantees.

use crate::bitset::BitSet;
use crate::cost::{Cost, CostError};
use std::fmt;

/// Dense element identifier (`0..n`).
pub type ElementId = u32;

/// Index of a set within a [`SetSystem`].
pub type SetId = u32;

/// One weighted set: a sorted posting list of elements plus a cost.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeightedSet {
    members: Vec<ElementId>,
    cost: Cost,
}

impl WeightedSet {
    /// Sorted, deduplicated element ids covered by this set (`Ben(s)`).
    #[inline]
    pub fn members(&self) -> &[ElementId] {
        &self.members
    }

    /// `|Ben(s)|`.
    #[inline]
    pub fn benefit(&self) -> usize {
        self.members.len()
    }

    /// `Cost(s)`.
    #[inline]
    pub fn cost(&self) -> Cost {
        self.cost
    }
}

/// Errors raised while building a [`SetSystem`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A set referenced an element id `>= n`.
    ElementOutOfRange {
        /// Offending set index (in insertion order).
        set: usize,
        /// The out-of-range element id.
        element: ElementId,
        /// Number of elements in the system.
        num_elements: usize,
    },
    /// A set weight failed [`Cost`] validation.
    InvalidCost {
        /// Offending set index (in insertion order).
        set: usize,
        /// Underlying cost error.
        source: CostError,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ElementOutOfRange {
                set,
                element,
                num_elements,
            } => write!(
                f,
                "set {set} references element {element} but the system has {num_elements} elements"
            ),
            BuildError::InvalidCost { set, source } => {
                write!(f, "set {set} has an invalid cost: {source}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`SetSystem`]; validates costs and element ranges.
#[derive(Debug, Clone)]
pub struct SetSystemBuilder {
    num_elements: usize,
    sets: Vec<WeightedSet>,
    error: Option<BuildError>,
}

impl SetSystemBuilder {
    /// Starts a system over elements `0..num_elements`.
    pub fn new(num_elements: usize) -> Self {
        SetSystemBuilder {
            num_elements,
            sets: Vec::new(),
            error: None,
        }
    }

    /// Adds a set given raw members and an `f64` weight.
    ///
    /// Members are sorted and deduplicated; errors are deferred to
    /// [`SetSystemBuilder::build`].
    pub fn add_set(
        &mut self,
        members: impl IntoIterator<Item = ElementId>,
        cost: f64,
    ) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        let idx = self.sets.len();
        let cost = match Cost::new(cost) {
            Ok(c) => c,
            Err(source) => {
                self.error = Some(BuildError::InvalidCost { set: idx, source });
                return self;
            }
        };
        let mut members: Vec<ElementId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        if let Some(&bad) = members.iter().find(|&&e| e as usize >= self.num_elements) {
            self.error = Some(BuildError::ElementOutOfRange {
                set: idx,
                element: bad,
                num_elements: self.num_elements,
            });
            return self;
        }
        self.sets.push(WeightedSet { members, cost });
        self
    }

    /// Adds the universe set (all of `0..n`) with the given weight.
    pub fn add_universe_set(&mut self, cost: f64) -> &mut Self {
        let n = self.num_elements as ElementId;
        self.add_set(0..n, cost)
    }

    /// Finalizes the system.
    pub fn build(&mut self) -> Result<SetSystem, BuildError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        Ok(SetSystem {
            num_elements: self.num_elements,
            sets: std::mem::take(&mut self.sets),
        })
    }
}

/// A finalized collection of weighted sets over `0..n` elements.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SetSystem {
    num_elements: usize,
    sets: Vec<WeightedSet>,
}

impl SetSystem {
    /// Starts building a system over `num_elements` elements.
    pub fn builder(num_elements: usize) -> SetSystemBuilder {
        SetSystemBuilder::new(num_elements)
    }

    /// Number of elements `n = |T|`.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Number of sets in the collection.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The set with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn set(&self, id: SetId) -> &WeightedSet {
        &self.sets[id as usize]
    }

    /// Iterates over `(id, set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SetId, &WeightedSet)> {
        self.sets.iter().enumerate().map(|(i, s)| (i as SetId, s))
    }

    /// Shorthand for `self.set(id).cost()`.
    #[inline]
    pub fn cost(&self, id: SetId) -> Cost {
        self.set(id).cost()
    }

    /// Shorthand for `self.set(id).members()`.
    #[inline]
    pub fn members(&self, id: SetId) -> &[ElementId] {
        self.set(id).members()
    }

    /// Sum of weights over all sets (the CMC guess-loop upper bound).
    pub fn total_cost(&self) -> Cost {
        self.sets.iter().map(|s| s.cost).sum()
    }

    /// Sum of the `k` cheapest set weights (the CMC initial budget, Fig. 1
    /// line 01). Returns the sum of all weights when fewer than `k` sets
    /// exist.
    pub fn k_cheapest_cost(&self, k: usize) -> Cost {
        let mut costs: Vec<Cost> = self.sets.iter().map(|s| s.cost).collect();
        costs.sort_unstable();
        costs.into_iter().take(k).sum()
    }

    /// Whether some set covers every element (Definition 1's feasibility
    /// requirement).
    pub fn has_universe_set(&self) -> bool {
        self.sets
            .iter()
            .any(|s| s.members.len() == self.num_elements)
    }

    /// Union coverage of a sub-collection, as a bitset over elements.
    pub fn coverage_of(&self, ids: &[SetId]) -> BitSet {
        let mut covered = BitSet::new(self.num_elements);
        for &id in ids {
            for &e in self.members(id) {
                covered.insert(e as usize);
            }
        }
        covered
    }

    /// Sum of weights of a sub-collection.
    pub fn cost_of(&self, ids: &[SetId]) -> Cost {
        ids.iter().map(|&id| self.cost(id)).sum()
    }
}

/// Computes the coverage target `⌈ŝ·n⌉` with "at least" semantics.
///
/// # Panics
/// Panics if `fraction` is not in `[0, 1]`.
pub fn coverage_target(num_elements: usize, fraction: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "coverage fraction must be in [0, 1], got {fraction}"
    );
    (fraction * num_elements as f64).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system() -> SetSystem {
        let mut b = SetSystem::builder(5);
        b.add_set([0, 1], 2.0)
            .add_set([2, 3, 4], 3.0)
            .add_set([4], 0.5)
            .add_universe_set(10.0);
        b.build().unwrap()
    }

    #[test]
    fn builder_constructs_sorted_dedup_sets() {
        let mut b = SetSystem::builder(4);
        b.add_set([3, 1, 1, 0], 1.0);
        let sys = b.build().unwrap();
        assert_eq!(sys.members(0), &[0, 1, 3]);
        assert_eq!(sys.set(0).benefit(), 3);
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = SetSystem::builder(3);
        b.add_set([0, 3], 1.0);
        match b.build() {
            Err(BuildError::ElementOutOfRange { set, element, .. }) => {
                assert_eq!(set, 0);
                assert_eq!(element, 3);
            }
            other => panic!("expected ElementOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn builder_rejects_bad_cost() {
        let mut b = SetSystem::builder(3);
        b.add_set([0], -1.0);
        assert!(matches!(b.build(), Err(BuildError::InvalidCost { .. })));
    }

    #[test]
    fn builder_error_sticks() {
        let mut b = SetSystem::builder(3);
        b.add_set([0], f64::NAN).add_set([1], 1.0);
        assert!(b.build().is_err());
    }

    #[test]
    fn accessors() {
        let sys = small_system();
        assert_eq!(sys.num_elements(), 5);
        assert_eq!(sys.num_sets(), 4);
        assert_eq!(sys.cost(2).value(), 0.5);
        assert_eq!(sys.total_cost().value(), 15.5);
        assert!(sys.has_universe_set());
        assert_eq!(sys.iter().count(), 4);
    }

    #[test]
    fn k_cheapest() {
        let sys = small_system();
        assert_eq!(sys.k_cheapest_cost(2).value(), 2.5);
        assert_eq!(sys.k_cheapest_cost(100), sys.total_cost());
        assert_eq!(sys.k_cheapest_cost(0), Cost::ZERO);
    }

    #[test]
    fn coverage_and_cost_of_subcollection() {
        let sys = small_system();
        let cov = sys.coverage_of(&[0, 2]);
        assert_eq!(cov.to_vec(), vec![0, 1, 4]);
        assert_eq!(sys.cost_of(&[0, 2]).value(), 2.5);
    }

    #[test]
    fn universe_detection_negative() {
        let mut b = SetSystem::builder(3);
        b.add_set([0, 1], 1.0);
        let sys = b.build().unwrap();
        assert!(!sys.has_universe_set());
    }

    #[test]
    fn coverage_target_rounds_up() {
        assert_eq!(coverage_target(16, 9.0 / 16.0), 9);
        assert_eq!(coverage_target(10, 0.35), 4);
        assert_eq!(coverage_target(10, 0.0), 0);
        assert_eq!(coverage_target(10, 1.0), 10);
        assert_eq!(coverage_target(0, 0.5), 0);
    }

    #[test]
    #[should_panic(expected = "coverage fraction")]
    fn coverage_target_rejects_bad_fraction() {
        coverage_target(10, 1.5);
    }
}
