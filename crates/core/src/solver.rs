//! The serving-layer solver abstraction (DESIGN.md §17).
//!
//! `scwsc_serve` answers many `(algorithm, k, ŝ, cost_fn, deadline)`
//! queries against one instance loaded at startup. This module defines
//! the seam between the two: a [`Query`] describes one request in
//! instance-independent terms, an [`Answer`] is the instance-independent
//! result, and a [`Solver`] is an immutable, `Send + Sync` instance
//! handle that turns one into the other under a [`Deadline`].
//!
//! The trait is object-safe on purpose — the server holds an
//! `Arc<dyn Solver>` so a set-system instance and a pattern-table
//! instance (see `scwsc_patterns::PatternInstance`) serve through the
//! same dispatch path. Implementations must verify their own degraded
//! certificates ([`Answer::certified`]): the service's degrade-don't-drop
//! contract promises callers a *checked* partial answer, and only the
//! instance knows how to recompute the claims.

use crate::algorithms::{cmc_within, cwsc_within, CmcParams};
use crate::engine::{Deadline, EngineError, SolveOutcome};
use crate::parallel::ThreadPool;
use crate::set_system::SetSystem;
use crate::solution::verify_certificate;
use crate::telemetry::Observer;
use std::sync::Arc;

/// Which solver family a query runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// CWSC (Fig. 2): at most `k` sets, coverage met, no cost guarantee.
    Cwsc,
    /// CMC (Fig. 1): relaxed size/coverage with a logarithmic cost bound.
    Cmc,
}

impl Algorithm {
    /// Stable lowercase name used on the wire and in traces.
    pub fn as_str(self) -> &'static str {
        match self {
            Algorithm::Cwsc => "cwsc",
            Algorithm::Cmc => "cmc",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s {
            "cwsc" => Some(Algorithm::Cwsc),
            "cmc" => Some(Algorithm::Cmc),
            _ => None,
        }
    }
}

/// Instance-independent name for a pattern weight function. Set-system
/// instances carry explicit weights and ignore it; pattern instances map
/// it to `scwsc_patterns::CostFn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostModel {
    /// Maximum covered measure — the paper's default.
    Max,
    /// Sum of covered measures.
    Sum,
    /// Mean of covered measures.
    Mean,
    /// Number of covered records.
    Count,
}

impl CostModel {
    /// Stable lowercase name used on the wire and in cache keys.
    pub fn as_str(self) -> &'static str {
        match self {
            CostModel::Max => "max",
            CostModel::Sum => "sum",
            CostModel::Mean => "mean",
            CostModel::Count => "count",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<CostModel> {
        match s {
            "max" => Some(CostModel::Max),
            "sum" => Some(CostModel::Sum),
            "mean" => Some(CostModel::Mean),
            "count" => Some(CostModel::Count),
            _ => None,
        }
    }
}

/// One solve request in instance-independent terms. Deadlines are *not*
/// part of the query: the service derives each request's [`Deadline`]
/// from the caller's deadline minus observed queue wait, so the same
/// query under different load is still the same cache entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Solver family.
    pub algorithm: Algorithm,
    /// Size bound `k` (Definition 1).
    pub k: usize,
    /// Coverage fraction `ŝ` in `(0, 1]`.
    pub coverage: f64,
    /// CMC budget growth factor `b` (ignored by CWSC).
    pub b: f64,
    /// CMC ε for the `(1+ε)k` schedule (ignored by CWSC).
    pub eps: f64,
    /// Pattern weight function (ignored by set-system instances).
    pub cost: CostModel,
}

impl Query {
    /// A CWSC query with the paper-default cost model.
    pub fn cwsc(k: usize, coverage: f64) -> Query {
        Query {
            algorithm: Algorithm::Cwsc,
            k,
            coverage,
            b: 1.0,
            eps: 1.0,
            cost: CostModel::Max,
        }
    }

    /// A CMC query with the paper-default `b = ε = 1` and cost model.
    pub fn cmc(k: usize, coverage: f64) -> Query {
        Query {
            algorithm: Algorithm::Cmc,
            ..Query::cwsc(k, coverage)
        }
    }

    /// The CMC parameter block this query describes (ε schedule,
    /// discounted coverage target — the guaranteed Fig. 1 form).
    pub fn cmc_params(&self) -> CmcParams {
        CmcParams::epsilon(self.k, self.coverage, self.b, self.eps)
    }
}

/// The instance-independent result of one solve: what was chosen, what it
/// covers, what it costs — and, for degraded outcomes, whether the
/// instance re-verified the certificate's claims.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// Sets (or patterns) selected.
    pub size: usize,
    /// Elements (or rows) covered.
    pub covered: usize,
    /// Coverage the solver was required to reach.
    pub target: usize,
    /// Total cost of the selection.
    pub total_cost: f64,
    /// Human-readable labels of the selected sets/patterns, in selection
    /// order (set ids for set systems, pattern syntax for tables).
    pub labels: Vec<String>,
    /// `Some(result)` when the outcome degraded and the instance
    /// re-checked the certificate against the partial solution; `None`
    /// for complete outcomes.
    pub certified: Option<bool>,
}

/// An immutable instance handle that answers [`Query`]s under a
/// [`Deadline`]. See the module docs for the contract.
pub trait Solver: Send + Sync {
    /// Short instance description for logs and the serve banner.
    fn describe(&self) -> String;

    /// Universe size (elements or rows) — what coverage fractions are
    /// relative to.
    fn elements(&self) -> usize;

    /// Runs one query. Degraded outcomes must arrive with
    /// [`Answer::certified`] populated by an independent re-check of the
    /// certificate.
    fn solve(
        &self,
        query: &Query,
        pool: &ThreadPool,
        deadline: &Deadline,
        obs: &mut dyn Observer,
    ) -> Result<SolveOutcome<Answer>, EngineError>;
}

/// A [`Solver`] over a plain weighted set system, shared behind [`Arc`]
/// so every connection thread serves from the same immutable instance.
#[derive(Debug, Clone)]
pub struct SystemInstance {
    system: Arc<SetSystem>,
}

impl SystemInstance {
    /// Wraps a set system for serving.
    pub fn new(system: Arc<SetSystem>) -> SystemInstance {
        SystemInstance { system }
    }

    /// The underlying set system.
    pub fn system(&self) -> &SetSystem {
        &self.system
    }
}

impl Solver for SystemInstance {
    fn describe(&self) -> String {
        format!(
            "set system: {} elements, {} sets",
            self.system.num_elements(),
            self.system.num_sets()
        )
    }

    fn elements(&self) -> usize {
        self.system.num_elements()
    }

    fn solve(
        &self,
        query: &Query,
        pool: &ThreadPool,
        deadline: &Deadline,
        obs: &mut dyn Observer,
    ) -> Result<SolveOutcome<Answer>, EngineError> {
        let to_answer = |solution: &crate::solution::Solution, target: usize| Answer {
            size: solution.size(),
            covered: solution.covered(),
            target,
            total_cost: solution.total_cost().value(),
            labels: solution.sets().iter().map(|s| format!("set#{s}")).collect(),
            certified: None,
        };
        match query.algorithm {
            Algorithm::Cwsc => {
                let target =
                    crate::set_system::coverage_target(self.system.num_elements(), query.coverage);
                let outcome =
                    cwsc_within(&self.system, query.k, query.coverage, pool, deadline, obs)?;
                Ok(match outcome {
                    SolveOutcome::Complete(s) => SolveOutcome::Complete(to_answer(&s, target)),
                    SolveOutcome::Degraded(d) => {
                        let check = verify_certificate(&self.system, &d.partial, &d.certificate);
                        let mut answer = to_answer(&d.partial, d.certificate.target);
                        answer.certified = Some(check.is_valid());
                        SolveOutcome::Degraded(crate::engine::Degraded {
                            partial: answer,
                            certificate: d.certificate,
                        })
                    }
                })
            }
            Algorithm::Cmc => {
                let params = query.cmc_params();
                let target = params.coverage_target(self.system.num_elements());
                let outcome = cmc_within(&self.system, &params, pool, deadline, obs)?;
                Ok(match outcome {
                    SolveOutcome::Complete(o) => {
                        SolveOutcome::Complete(to_answer(&o.solution, target))
                    }
                    SolveOutcome::Degraded(d) => {
                        let check =
                            verify_certificate(&self.system, &d.partial.solution, &d.certificate);
                        let mut answer = to_answer(&d.partial.solution, d.certificate.target);
                        answer.certified = Some(check.is_valid());
                        SolveOutcome::Degraded(crate::engine::Degraded {
                            partial: answer,
                            certificate: d.certificate,
                        })
                    }
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::Threads;

    fn instance() -> SystemInstance {
        let mut b = SetSystem::builder(6);
        b.add_set([0, 1, 2], 3.0)
            .add_set([3, 4], 1.0)
            .add_set([5], 1.0)
            .add_universe_set(50.0);
        SystemInstance::new(Arc::new(b.build().unwrap()))
    }

    #[test]
    fn cwsc_query_completes_with_labels() {
        let inst = instance();
        let pool = ThreadPool::new(Threads::serial());
        let outcome = inst
            .solve(
                &Query::cwsc(2, 0.8),
                &pool,
                &Deadline::unbounded(),
                &mut crate::telemetry::NoopObserver,
            )
            .unwrap();
        assert!(outcome.is_complete());
        let answer = outcome.value();
        assert!(answer.size <= 2);
        assert!(answer.covered >= 5);
        assert_eq!(answer.labels.len(), answer.size);
        assert!(answer.certified.is_none());
    }

    #[test]
    fn cmc_degrades_with_verified_certificate_on_zero_tick_budget() {
        let inst = instance();
        let pool = ThreadPool::new(Threads::serial());
        let deadline = Deadline::unbounded().with_tick_budget(0);
        let outcome = inst
            .solve(
                &Query::cmc(2, 0.8),
                &pool,
                &deadline,
                &mut crate::telemetry::NoopObserver,
            )
            .unwrap();
        assert!(outcome.is_degraded());
        assert_eq!(outcome.value().certified, Some(true));
    }

    #[test]
    fn algorithm_and_cost_names_round_trip() {
        for a in [Algorithm::Cwsc, Algorithm::Cmc] {
            assert_eq!(Algorithm::parse(a.as_str()), Some(a));
        }
        for c in [
            CostModel::Max,
            CostModel::Sum,
            CostModel::Mean,
            CostModel::Count,
        ] {
            assert_eq!(CostModel::parse(c.as_str()), Some(c));
        }
        assert_eq!(Algorithm::parse("nope"), None);
        assert_eq!(CostModel::parse(""), None);
    }
}
