//! Solution representation and an independent verifier.
//!
//! Every algorithm in this crate returns a [`Solution`]: the chosen set ids
//! in selection order plus derived totals. The [`verify`] function recomputes
//! coverage and cost from the raw [`SetSystem`] so tests and callers never
//! have to trust an algorithm's own bookkeeping.

use crate::cost::Cost;
use crate::engine::Certificate;
use crate::set_system::{coverage_target, SetId, SetSystem};
use std::fmt;

/// A sub-collection of sets chosen by a cover algorithm, in selection order.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Solution {
    sets: Vec<SetId>,
    total_cost: Cost,
    covered: usize,
}

impl Solution {
    /// Assembles a solution and recomputes its totals from `system`.
    pub fn from_sets(system: &SetSystem, sets: Vec<SetId>) -> Solution {
        let covered = system.coverage_of(&sets).count_ones();
        let total_cost = system.cost_of(&sets);
        Solution {
            sets,
            total_cost,
            covered,
        }
    }

    /// Chosen set ids in the order the algorithm selected them.
    #[inline]
    pub fn sets(&self) -> &[SetId] {
        &self.sets
    }

    /// Number of chosen sets.
    #[inline]
    pub fn size(&self) -> usize {
        self.sets.len()
    }

    /// Sum of weights of the chosen sets.
    #[inline]
    pub fn total_cost(&self) -> Cost {
        self.total_cost
    }

    /// Number of elements covered by the union of the chosen sets.
    #[inline]
    pub fn covered(&self) -> usize {
        self.covered
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sets, cost {}, covering {} elements: {:?}",
            self.size(),
            self.total_cost,
            self.covered,
            self.sets
        )
    }
}

/// Why an algorithm failed to produce a solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// CWSC line 07: no candidate set has the required marginal benefit.
    ///
    /// Cannot occur when the input satisfies Definition 1 (contains a
    /// universe set).
    NoSolution,
    /// CMC exhausted every budget guess without reaching its coverage
    /// target. Cannot occur when the input contains a universe set.
    BudgetExhausted,
    /// The requested size bound was zero.
    ZeroSizeBound,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NoSolution => write!(f, "no feasible solution found"),
            SolveError::BudgetExhausted => {
                write!(f, "budget guesses exhausted without reaching coverage")
            }
            SolveError::ZeroSizeBound => write!(f, "size bound k must be at least 1"),
        }
    }
}

impl std::error::Error for SolveError {}

/// The three simultaneous requirements of Definition 1, used by [`verify`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Requirements {
    /// Maximum number of sets.
    pub max_sets: usize,
    /// Minimum number of covered elements (already scaled by `n`).
    pub min_covered: usize,
}

impl Requirements {
    /// Builds requirements from `k` and a coverage fraction `ŝ`.
    pub fn new(system: &SetSystem, k: usize, coverage_fraction: f64) -> Requirements {
        Requirements {
            max_sets: k,
            min_covered: coverage_target(system.num_elements(), coverage_fraction),
        }
    }

    /// Relaxes the size bound to `factor * k` (e.g. CMC's `5k`), rounding up.
    pub fn relax_size(self, factor: f64) -> Requirements {
        Requirements {
            max_sets: (self.max_sets as f64 * factor).ceil() as usize,
            ..self
        }
    }
}

/// Result of independently re-checking a solution against requirements.
#[derive(Debug, Clone, PartialEq)]
pub struct Verification {
    /// Recomputed number of covered elements.
    pub covered: usize,
    /// Recomputed total cost.
    pub total_cost: Cost,
    /// Whether the size bound holds.
    pub size_ok: bool,
    /// Whether the coverage requirement holds.
    pub coverage_ok: bool,
    /// Whether the solution's cached totals match the recomputation.
    pub totals_consistent: bool,
}

impl Verification {
    /// All checks passed.
    pub fn is_valid(&self) -> bool {
        self.size_ok && self.coverage_ok && self.totals_consistent
    }
}

/// Recomputes a solution's coverage and cost from scratch and checks the
/// requirements. Never trusts the solution's cached totals.
pub fn verify(system: &SetSystem, solution: &Solution, req: Requirements) -> Verification {
    let covered = system.coverage_of(solution.sets()).count_ones();
    let total_cost = system.cost_of(solution.sets());
    Verification {
        covered,
        total_cost,
        size_ok: solution.size() <= req.max_sets,
        coverage_ok: covered >= req.min_covered,
        totals_consistent: covered == solution.covered() && total_cost == solution.total_cost(),
    }
}

/// Result of independently re-checking a degraded outcome's
/// [`Certificate`] against its partial solution (see [`verify_certificate`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CertificateCheck {
    /// Coverage recomputed from the raw set system.
    pub recomputed_covered: usize,
    /// Cost recomputed from the raw set system.
    pub recomputed_cost: f64,
    /// The certificate's `sets_used` / `covered` / `total_cost` claims all
    /// match the recomputation, and `quotas_exhausted` is strictly
    /// ascending (a well-formed level list).
    pub claims_consistent: bool,
    /// The degrade is honest: claimed coverage is strictly below the
    /// target (a solver that reached its target must return `Complete`).
    pub target_unmet: bool,
}

impl CertificateCheck {
    /// All checks passed.
    pub fn is_valid(&self) -> bool {
        self.claims_consistent && self.target_unmet
    }
}

/// Independently re-checks a [`Certificate`] produced by a degraded solve:
/// recomputes the partial solution's coverage and cost from the raw
/// [`SetSystem`] and compares them to the solver's claims, never trusting
/// either side's bookkeeping (the degraded counterpart of [`verify`]).
pub fn verify_certificate(
    system: &SetSystem,
    partial: &Solution,
    cert: &Certificate,
) -> CertificateCheck {
    let covered = system.coverage_of(partial.sets()).count_ones();
    let total_cost = system.cost_of(partial.sets()).value();
    let quotas_sorted = cert.quotas_exhausted.windows(2).all(|w| w[0] < w[1]);
    CertificateCheck {
        recomputed_covered: covered,
        recomputed_cost: total_cost,
        claims_consistent: cert.sets_used == partial.size()
            && cert.covered == covered
            && cert.total_cost == total_cost
            && quotas_sorted,
        target_unmet: cert.covered < cert.target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> SetSystem {
        let mut b = SetSystem::builder(6);
        b.add_set([0, 1, 2], 3.0)
            .add_set([2, 3], 1.0)
            .add_set([4, 5], 2.0)
            .add_universe_set(100.0);
        b.build().unwrap()
    }

    #[test]
    fn from_sets_computes_totals() {
        let sys = system();
        let sol = Solution::from_sets(&sys, vec![0, 1]);
        assert_eq!(sol.size(), 2);
        assert_eq!(sol.covered(), 4); // {0,1,2,3}
        assert_eq!(sol.total_cost().value(), 4.0);
        assert_eq!(sol.sets(), &[0, 1]);
    }

    #[test]
    fn overlapping_sets_do_not_double_count() {
        let sys = system();
        let sol = Solution::from_sets(&sys, vec![0, 0, 1]);
        assert_eq!(sol.covered(), 4);
        // cost *is* double counted: the solution is a multiset of choices
        assert_eq!(sol.total_cost().value(), 7.0);
    }

    #[test]
    fn verify_accepts_valid_solution() {
        let sys = system();
        let sol = Solution::from_sets(&sys, vec![0, 2]);
        let req = Requirements::new(&sys, 2, 5.0 / 6.0);
        let v = verify(&sys, &sol, req);
        assert_eq!(v.covered, 5);
        assert!(v.is_valid(), "{v:?}");
    }

    #[test]
    fn verify_flags_size_violation() {
        let sys = system();
        let sol = Solution::from_sets(&sys, vec![0, 1, 2]);
        let req = Requirements::new(&sys, 2, 0.5);
        let v = verify(&sys, &sol, req);
        assert!(!v.size_ok);
        assert!(!v.is_valid());
    }

    #[test]
    fn verify_flags_coverage_violation() {
        let sys = system();
        let sol = Solution::from_sets(&sys, vec![1]);
        let req = Requirements::new(&sys, 2, 0.9);
        let v = verify(&sys, &sol, req);
        assert!(!v.coverage_ok);
    }

    #[test]
    fn relax_size_rounds_up() {
        let sys = system();
        let req = Requirements::new(&sys, 3, 0.5).relax_size(1.5);
        assert_eq!(req.max_sets, 5);
        let req5k = Requirements::new(&sys, 3, 0.5).relax_size(5.0);
        assert_eq!(req5k.max_sets, 15);
    }

    #[test]
    fn display_mentions_size_and_cost() {
        let sys = system();
        let sol = Solution::from_sets(&sys, vec![1]);
        let text = sol.to_string();
        assert!(text.contains("1 sets"), "{text}");
        assert!(text.contains("cost 1"), "{text}");
    }

    fn certificate_for(_sys: &SetSystem, sol: &Solution, target: usize) -> Certificate {
        Certificate {
            sets_used: sol.size(),
            covered: sol.covered(),
            target,
            total_cost: sol.total_cost().value(),
            quotas_exhausted: vec![0, 2],
            ticks: 5,
            reason: crate::engine::DegradeReason::TickBudget,
        }
    }

    #[test]
    fn verify_certificate_accepts_honest_claims() {
        let sys = system();
        let sol = Solution::from_sets(&sys, vec![0, 1]);
        let cert = certificate_for(&sys, &sol, 6);
        let check = verify_certificate(&sys, &sol, &cert);
        assert_eq!(check.recomputed_covered, 4);
        assert_eq!(check.recomputed_cost, 4.0);
        assert!(check.is_valid(), "{check:?}");
    }

    #[test]
    fn verify_certificate_rejects_inflated_coverage() {
        let sys = system();
        let sol = Solution::from_sets(&sys, vec![0]);
        let mut cert = certificate_for(&sys, &sol, 6);
        cert.covered += 1; // solver lies about its progress
        let check = verify_certificate(&sys, &sol, &cert);
        assert!(!check.claims_consistent);
        assert!(!check.is_valid());
    }

    #[test]
    fn verify_certificate_rejects_met_target() {
        // A degrade claiming covered >= target is dishonest: the solver
        // should have returned Complete.
        let sys = system();
        let sol = Solution::from_sets(&sys, vec![0, 1]);
        let cert = certificate_for(&sys, &sol, 4);
        let check = verify_certificate(&sys, &sol, &cert);
        assert!(check.claims_consistent);
        assert!(!check.target_unmet);
        assert!(!check.is_valid());
    }

    #[test]
    fn verify_certificate_rejects_unsorted_quotas() {
        let sys = system();
        let sol = Solution::from_sets(&sys, vec![0]);
        let mut cert = certificate_for(&sys, &sol, 6);
        cert.quotas_exhausted = vec![2, 0];
        assert!(!verify_certificate(&sys, &sol, &cert).claims_consistent);
    }

    #[test]
    fn solve_error_messages() {
        assert!(SolveError::NoSolution.to_string().contains("no feasible"));
        assert!(SolveError::BudgetExhausted.to_string().contains("budget"));
        assert!(SolveError::ZeroSizeBound.to_string().contains("k"));
    }
}
