//! Incremental size-constrained weighted set cover.
//!
//! Section VII names as future work "an incremental version ... in which
//! the solution must be continuously maintained as new elements arrive".
//! [`IncrementalCover`] implements that maintenance: the set collection is
//! fixed, elements stream in (each announcing which sets contain it), and
//! the maintainer keeps a current solution that always satisfies the
//! `k`/`ŝ` requirements over the elements seen so far.
//!
//! Two repair strategies are provided (see [`RepairStrategy`]): re-solving
//! with CWSC from scratch on every violation, or greedily *patching* the
//! existing solution with the best marginal-gain set and falling back to a
//! full re-solve only when the patch cannot restore feasibility within `k`
//! sets. Arrivals that the current solution already covers cost
//! `O(|sets containing the element|)` either way.

use crate::algorithms::cwsc::cwsc_with_target;
use crate::set_system::{coverage_target, SetId, SetSystem};
use crate::solution::{Solution, SolveError};
use crate::telemetry::{pack_k_target, NoopObserver, Observer, PhaseSpan, TraceId};

/// Phase-span name covering a greedy patch repair.
pub const PHASE_REPAIR_PATCH: &str = "repair_patch";
/// Phase-span name covering a from-scratch re-solve repair.
pub const PHASE_REPAIR_RESOLVE: &str = "repair_resolve";

/// How [`IncrementalCover`] restores feasibility after an arrival breaks
/// the coverage requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairStrategy {
    /// Re-run CWSC from scratch over the elements seen so far.
    #[default]
    Resolve,
    /// Add the highest marginal-gain set while the solution has room
    /// (`< k` sets); fall back to [`RepairStrategy::Resolve`] when the
    /// patch cannot reach the target. Cheaper per repair, but the patched
    /// solution may drift above the from-scratch cost over time.
    Patch,
}

/// Streaming maintainer for a size-constrained weighted set cover.
#[derive(Debug)]
pub struct IncrementalCover {
    k: usize,
    coverage_fraction: f64,
    strategy: RepairStrategy,
    num_sets: usize,
    set_costs: Vec<f64>,
    /// members[s] = elements of set s seen so far
    members: Vec<Vec<u32>>,
    num_elements: usize,
    solution: Vec<SetId>,
    /// covered[e] = element e is covered by the current solution
    covered_mask: Vec<bool>,
    covered: usize,
    chosen_mask: Vec<bool>,
    resolves: u64,
    patches: u64,
}

/// Errors from [`IncrementalCover`].
#[derive(Debug, Clone, PartialEq)]
pub enum IncrementalError {
    /// A membership referenced an unknown set id.
    UnknownSet(SetId),
    /// The underlying solver failed (no universe set in the collection).
    Solve(SolveError),
    /// A set cost failed validation.
    InvalidCost(f64),
}

impl std::fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrementalError::UnknownSet(id) => write!(f, "unknown set id {id}"),
            IncrementalError::Solve(e) => write!(f, "re-solve failed: {e}"),
            IncrementalError::InvalidCost(c) => write!(f, "invalid set cost {c}"),
        }
    }
}

impl std::error::Error for IncrementalError {}

impl IncrementalCover {
    /// Creates a maintainer over a fixed collection of (initially empty)
    /// sets with the given costs, using the default
    /// [`RepairStrategy::Resolve`]. To guarantee feasibility, include a
    /// set that every future element belongs to (the all-`ALL` analogue).
    pub fn new(
        set_costs: &[f64],
        k: usize,
        coverage_fraction: f64,
    ) -> Result<IncrementalCover, IncrementalError> {
        IncrementalCover::with_strategy(set_costs, k, coverage_fraction, RepairStrategy::default())
    }

    /// [`IncrementalCover::new`] with an explicit repair strategy.
    pub fn with_strategy(
        set_costs: &[f64],
        k: usize,
        coverage_fraction: f64,
        strategy: RepairStrategy,
    ) -> Result<IncrementalCover, IncrementalError> {
        if let Some(&bad) = set_costs.iter().find(|c| !c.is_finite() || **c < 0.0) {
            return Err(IncrementalError::InvalidCost(bad));
        }
        assert!(k >= 1, "k must be at least 1");
        assert!(
            (0.0..=1.0).contains(&coverage_fraction),
            "coverage fraction must be in [0, 1]"
        );
        Ok(IncrementalCover {
            k,
            coverage_fraction,
            strategy,
            num_sets: set_costs.len(),
            set_costs: set_costs.to_vec(),
            members: vec![Vec::new(); set_costs.len()],
            num_elements: 0,
            solution: Vec::new(),
            covered_mask: Vec::new(),
            covered: 0,
            chosen_mask: vec![false; set_costs.len()],
            resolves: 0,
            patches: 0,
        })
    }

    /// Number of elements that have arrived.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// The current solution's set ids (valid for the elements seen so far).
    pub fn solution(&self) -> &[SetId] {
        &self.solution
    }

    /// Total cost of the current solution.
    pub fn solution_cost(&self) -> f64 {
        self.solution
            .iter()
            .map(|&s| self.set_costs[s as usize])
            .sum()
    }

    /// Elements covered by the current solution.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// How many times the maintainer re-solved from scratch.
    pub fn resolves(&self) -> u64 {
        self.resolves
    }

    /// How many times a greedy patch restored feasibility.
    pub fn patches(&self) -> u64 {
        self.patches
    }

    /// Current coverage requirement `⌈ŝ·n⌉`.
    pub fn target(&self) -> usize {
        coverage_target(self.num_elements, self.coverage_fraction)
    }

    /// Feeds one arriving element, identified implicitly by arrival order,
    /// together with the ids of the sets containing it. Returns `true`
    /// when the arrival forced a repair (patch or re-solve).
    pub fn push_element(&mut self, in_sets: &[SetId]) -> Result<bool, IncrementalError> {
        self.push_element_observed(in_sets, &mut NoopObserver)
    }

    /// [`push_element`](IncrementalCover::push_element) reporting repair
    /// work through an [`Observer`]: a [`PHASE_REPAIR_PATCH`] or
    /// [`PHASE_REPAIR_RESOLVE`] span per repair, `benefit_computed` for
    /// marginal-benefit scans, and `set_selected` per installed set (the
    /// re-solve path additionally relays the inner CWSC events).
    pub fn push_element_observed<O: Observer + ?Sized>(
        &mut self,
        in_sets: &[SetId],
        obs: &mut O,
    ) -> Result<bool, IncrementalError> {
        for &s in in_sets {
            if s as usize >= self.num_sets {
                return Err(IncrementalError::UnknownSet(s));
            }
        }
        let id = self.num_elements as u32;
        self.num_elements += 1;
        let mut covered_by_solution = false;
        for &s in in_sets {
            self.members[s as usize].push(id);
            if self.chosen_mask[s as usize] {
                covered_by_solution = true;
            }
        }
        self.covered_mask.push(covered_by_solution);
        if covered_by_solution {
            self.covered += 1;
        }
        if self.covered >= self.target() {
            return Ok(false);
        }
        match self.strategy {
            RepairStrategy::Resolve => self.resolve(obs)?,
            RepairStrategy::Patch => {
                if !self.patch(obs) {
                    self.resolve(obs)?;
                }
            }
        }
        Ok(true)
    }

    /// Greedy patch: add max-marginal-gain sets while room remains.
    /// Returns whether the target was reached.
    fn patch<O: Observer + ?Sized>(&mut self, obs: &mut O) -> bool {
        obs.trace_started(
            TraceId::mint(
                "repair_patch",
                self.num_elements as u64,
                pack_k_target(self.k, self.target()),
            ),
            "repair_patch",
        );
        let span = PhaseSpan::enter(obs, PHASE_REPAIR_PATCH);
        let target = self.target();
        while self.covered < target && self.solution.len() < self.k {
            let mut best: Option<(SetId, usize)> = None; // (set, mben)
            let mut scanned = 0u64;
            for s in 0..self.num_sets {
                if self.chosen_mask[s] {
                    continue;
                }
                let mben = self.members[s]
                    .iter()
                    .filter(|&&e| !self.covered_mask[e as usize])
                    .count();
                scanned += 1;
                if mben == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((b, b_mben)) => {
                        let cost_s = self.set_costs[s];
                        let cost_b = self.set_costs[b as usize];
                        // gain comparison by cross-multiplication, ties on
                        // bigger mben then lower id
                        (mben as f64 * cost_b)
                            .total_cmp(&(b_mben as f64 * cost_s))
                            .then(mben.cmp(&b_mben))
                            .is_gt()
                    }
                };
                if better {
                    best = Some((s as SetId, mben));
                }
            }
            obs.benefit_computed(scanned);
            let Some((s, mben)) = best else { break };
            obs.set_selected(s as u64, mben as u64, self.set_costs[s as usize]);
            self.install_one(s);
        }
        let repaired = self.covered >= target;
        if repaired {
            self.patches += 1;
        }
        span.exit(obs);
        repaired
    }

    fn install_one(&mut self, s: SetId) {
        self.chosen_mask[s as usize] = true;
        self.solution.push(s);
        for &e in &self.members[s as usize] {
            let slot = &mut self.covered_mask[e as usize];
            if !*slot {
                *slot = true;
                self.covered += 1;
            }
        }
    }

    /// Rebuilds the solution from scratch with CWSC over the elements seen
    /// so far.
    fn resolve<O: Observer + ?Sized>(&mut self, obs: &mut O) -> Result<(), IncrementalError> {
        obs.trace_started(
            TraceId::mint(
                "repair_resolve",
                self.num_elements as u64,
                pack_k_target(self.k, self.target()),
            ),
            "repair_resolve",
        );
        let span = PhaseSpan::enter(obs, PHASE_REPAIR_RESOLVE);
        let system = self.snapshot();
        let result = cwsc_with_target(&system, self.k, self.target(), obs);
        span.exit(obs);
        let sol = result.map_err(IncrementalError::Solve)?;
        self.install(&system, sol);
        self.resolves += 1;
        Ok(())
    }

    /// Materializes the elements seen so far as a [`SetSystem`] snapshot.
    pub fn snapshot(&self) -> SetSystem {
        let mut b = SetSystem::builder(self.num_elements);
        for (s, members) in self.members.iter().enumerate() {
            b.add_set(members.iter().copied(), self.set_costs[s]);
        }
        b.build().expect("snapshot of validated state cannot fail")
    }

    fn install(&mut self, system: &SetSystem, sol: Solution) {
        self.chosen_mask.fill(false);
        self.covered_mask.fill(false);
        self.solution.clear();
        self.covered = 0;
        for &s in sol.sets() {
            self.chosen_mask[s as usize] = true;
            self.solution.push(s);
        }
        let covered_bits = system.coverage_of(sol.sets());
        for e in covered_bits.iter_ones() {
            self.covered_mask[e] = true;
        }
        self.covered = covered_bits.count_ones();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;

    /// 3 sets: two halves and a universe (every element reports it).
    fn maintainer() -> IncrementalCover {
        IncrementalCover::new(&[2.0, 3.0, 10.0], 2, 0.8).unwrap()
    }

    #[test]
    fn starts_empty_and_satisfied() {
        let m = maintainer();
        assert_eq!(m.num_elements(), 0);
        assert_eq!(m.target(), 0);
        assert_eq!(m.solution(), &[] as &[SetId]);
        assert_eq!(m.solution_cost(), 0.0);
    }

    #[test]
    fn first_element_triggers_repair() {
        let mut m = maintainer();
        let repaired = m.push_element(&[0, 2]).unwrap();
        assert!(repaired);
        assert_eq!(m.resolves(), 1);
        assert!(m.covered() >= m.target());
    }

    #[test]
    fn covered_arrivals_do_not_repair() {
        let mut m = maintainer();
        m.push_element(&[0, 2]).unwrap();
        let r0 = m.resolves();
        // Same membership pattern: already covered by the chosen set(s).
        let repaired = m.push_element(&[0, 2]).unwrap();
        assert!(!repaired);
        assert_eq!(m.resolves(), r0);
    }

    #[test]
    fn coverage_always_maintained() {
        let mut m = maintainer();
        // Alternate memberships so coverage periodically breaks.
        for i in 0..50u32 {
            let sets: &[SetId] = if i % 2 == 0 { &[0, 2] } else { &[1, 2] };
            m.push_element(sets).unwrap();
            assert!(
                m.covered() >= m.target(),
                "after {} arrivals: covered {} < target {}",
                i + 1,
                m.covered(),
                m.target()
            );
            assert!(m.solution().len() <= 2);
        }
        assert!(m.resolves() < 50, "lazy maintenance must skip re-solves");
    }

    #[test]
    fn patch_strategy_maintains_the_invariant_with_fewer_resolves() {
        let mut patching =
            IncrementalCover::with_strategy(&[2.0, 3.0, 10.0], 2, 0.8, RepairStrategy::Patch)
                .unwrap();
        let mut resolving = maintainer();
        for i in 0..60u32 {
            let sets: &[SetId] = if i % 2 == 0 { &[0, 2] } else { &[1, 2] };
            patching.push_element(sets).unwrap();
            resolving.push_element(sets).unwrap();
            assert!(patching.covered() >= patching.target());
            assert!(patching.solution().len() <= 2);
        }
        assert!(
            patching.resolves() <= resolving.resolves(),
            "patching should avoid at least some full re-solves: {} vs {}",
            patching.resolves(),
            resolving.resolves()
        );
        assert!(patching.patches() >= 1);
    }

    #[test]
    fn patch_falls_back_to_resolve_when_full() {
        // k=1: once a set is chosen, a patch can never add another, so a
        // coverage break must fall back to a re-solve.
        let mut m =
            IncrementalCover::with_strategy(&[1.0, 1.0, 10.0], 1, 1.0, RepairStrategy::Patch)
                .unwrap();
        m.push_element(&[0, 2]).unwrap();
        m.push_element(&[1, 2]).unwrap(); // breaks coverage, k exhausted
        assert!(m.covered() >= m.target());
        assert!(m.resolves() >= 1, "fallback re-solve must have happened");
    }

    #[test]
    fn matches_from_scratch_solution_quality() {
        let mut m = maintainer();
        for i in 0..30u32 {
            let sets: &[SetId] = if i % 3 == 0 { &[0, 2] } else { &[1, 2] };
            m.push_element(sets).unwrap();
        }
        let snapshot = m.snapshot();
        let fresh = cwsc_with_target(&snapshot, 2, m.target(), &mut Stats::new()).unwrap();
        // Incremental solution is valid; fresh CWSC may be cheaper but the
        // maintained one must still satisfy the requirements.
        assert!(m.covered() >= m.target());
        assert!(fresh.covered() >= m.target());
    }

    #[test]
    fn observed_push_reports_repair_phases() {
        use crate::telemetry::MetricsRecorder;
        let mut m =
            IncrementalCover::with_strategy(&[2.0, 3.0, 10.0], 2, 0.8, RepairStrategy::Patch)
                .unwrap();
        let mut rec = MetricsRecorder::new();
        for i in 0..20u32 {
            let sets: &[SetId] = if i % 2 == 0 { &[0, 2] } else { &[1, 2] };
            m.push_element_observed(sets, &mut rec).unwrap();
        }
        let patched = rec.phase_seconds(PHASE_REPAIR_PATCH).is_some();
        let resolved = rec.phase_seconds(PHASE_REPAIR_RESOLVE).is_some();
        assert!(patched || resolved, "some repair must have been spanned");
        assert!(rec.benefits_computed >= 1);
        assert!(rec.selections >= 1);
    }

    #[test]
    fn unknown_set_is_rejected() {
        let mut m = maintainer();
        assert_eq!(m.push_element(&[7]), Err(IncrementalError::UnknownSet(7)));
        assert_eq!(m.num_elements(), 0, "failed arrival must not be recorded");
    }

    #[test]
    fn invalid_cost_rejected_at_construction() {
        assert!(matches!(
            IncrementalCover::new(&[1.0, -2.0], 1, 0.5),
            Err(IncrementalError::InvalidCost(_))
        ));
    }

    #[test]
    fn infeasible_arrival_surfaces_solver_error() {
        // One set, k=1, full coverage, but an element arrives in no set.
        let mut m = IncrementalCover::new(&[1.0], 1, 1.0).unwrap();
        let err = m.push_element(&[]).unwrap_err();
        assert!(matches!(err, IncrementalError::Solve(_)));
    }

    #[test]
    fn covered_mask_consistent_after_mixed_ops() {
        let mut m =
            IncrementalCover::with_strategy(&[1.0, 2.0, 50.0], 2, 0.7, RepairStrategy::Patch)
                .unwrap();
        for i in 0..40u32 {
            let sets: &[SetId] = match i % 3 {
                0 => &[0, 2],
                1 => &[1, 2],
                _ => &[2],
            };
            m.push_element(sets).unwrap();
            // The mask count must equal the cached count.
            let mask_count = m.covered_mask.iter().filter(|&&c| c).count();
            assert_eq!(mask_count, m.covered());
        }
    }
}
