//! The prior-art heuristics the paper compares against (Sections III and
//! VI-C): each optimizes two of {coverage, cost, size} but not all three.

use crate::cover_state::CoverState;
use crate::set_system::{coverage_target, SetId, SetSystem};
use crate::solution::{Solution, SolveError};
use crate::telemetry::{audit, pack_k_target, Observer, PhaseSpan, TraceId, PHASE_TOTAL};

/// Greedy *partial weighted set cover*: repeatedly picks the set with the
/// highest marginal gain until the coverage target is met (optimizes cost
/// and coverage, ignores size — Table VI's baseline).
pub fn greedy_weighted_set_cover<O: Observer + ?Sized>(
    system: &SetSystem,
    coverage_fraction: f64,
    obs: &mut O,
) -> Result<Solution, SolveError> {
    let target = coverage_target(system.num_elements(), coverage_fraction);
    obs.trace_started(
        TraceId::mint(
            "greedy_wsc",
            system.num_elements() as u64,
            pack_k_target(0, target),
        ),
        "greedy_wsc",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let result = wsc_run(system, coverage_fraction, obs);
    span.exit(obs);
    result
}

fn wsc_run<O: Observer + ?Sized>(
    system: &SetSystem,
    coverage_fraction: f64,
    obs: &mut O,
) -> Result<Solution, SolveError> {
    let target = coverage_target(system.num_elements(), coverage_fraction);
    obs.guess_started(None);
    let mut state = CoverState::new(system);
    obs.benefit_computed(system.num_sets() as u64);
    let mut chosen: Vec<SetId> = Vec::new();
    let mut rem = target;
    while rem > 0 {
        let top = state.top_gain(audit::TOP, |_| true);
        let Some((q, newly)) = audit::pick_cover(&mut state, obs, audit::ORDER_GAIN, &top) else {
            return Err(SolveError::NoSolution);
        };
        chosen.push(q);
        rem = rem.saturating_sub(newly);
    }
    Ok(Solution::from_sets(system, chosen))
}

/// Greedy *maximum coverage*: picks exactly up to `k` sets with the largest
/// marginal benefit (optimizes coverage and size, ignores cost). The
/// classic `(1−1/e)` heuristic of \[10\].
pub fn greedy_max_coverage<O: Observer + ?Sized>(
    system: &SetSystem,
    k: usize,
    obs: &mut O,
) -> Solution {
    obs.trace_started(
        TraceId::mint(
            "greedy_max_cov",
            system.num_elements() as u64,
            pack_k_target(k, 0),
        ),
        "greedy_max_cov",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    obs.guess_started(None);
    let mut state = CoverState::new(system);
    obs.benefit_computed(system.num_sets() as u64);
    let mut chosen: Vec<SetId> = Vec::new();
    for _ in 0..k {
        let top = state.top_benefit(audit::TOP, |_| true);
        let Some((q, _)) = audit::pick_cover(&mut state, obs, audit::ORDER_BENEFIT, &top) else {
            break;
        };
        chosen.push(q);
    }
    span.exit(obs);
    Solution::from_sets(system, chosen)
}

/// Greedy *partial maximum coverage*: picks sets with the largest marginal
/// benefit until the coverage target is met, ignoring cost entirely. This
/// is the Section VI-C comparator whose solutions cost up to 10× more than
/// CWSC/CMC.
pub fn greedy_partial_max_coverage<O: Observer + ?Sized>(
    system: &SetSystem,
    coverage_fraction: f64,
    obs: &mut O,
) -> Result<Solution, SolveError> {
    obs.trace_started(
        TraceId::mint(
            "greedy_pmc",
            system.num_elements() as u64,
            pack_k_target(0, coverage_target(system.num_elements(), coverage_fraction)),
        ),
        "greedy_pmc",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let result = pmc_run(system, coverage_fraction, obs);
    span.exit(obs);
    result
}

fn pmc_run<O: Observer + ?Sized>(
    system: &SetSystem,
    coverage_fraction: f64,
    obs: &mut O,
) -> Result<Solution, SolveError> {
    let target = coverage_target(system.num_elements(), coverage_fraction);
    obs.guess_started(None);
    let mut state = CoverState::new(system);
    obs.benefit_computed(system.num_sets() as u64);
    let mut chosen: Vec<SetId> = Vec::new();
    let mut rem = target;
    while rem > 0 {
        let top = state.top_benefit(audit::TOP, |_| true);
        let Some((q, newly)) = audit::pick_cover(&mut state, obs, audit::ORDER_BENEFIT, &top)
        else {
            return Err(SolveError::NoSolution);
        };
        chosen.push(q);
        rem = rem.saturating_sub(newly);
    }
    Ok(Solution::from_sets(system, chosen))
}

/// Greedy *budgeted maximum coverage* (Khuller–Moss–Naor \[11\]): picks sets
/// by marginal gain while the running total stays within `budget`
/// (optimizes coverage under a cost cap, ignores size). Section III shows
/// by counter-example that truncating this to `O(k)` picks can cover
/// arbitrarily poorly; `max_sets` exposes that truncation for tests.
pub fn budgeted_max_coverage<O: Observer + ?Sized>(
    system: &SetSystem,
    budget: f64,
    max_sets: Option<usize>,
    obs: &mut O,
) -> Solution {
    obs.trace_started(
        TraceId::mint(
            "budgeted_max_cov",
            system.num_elements() as u64,
            budget.to_bits(),
        ),
        "budgeted_max_cov",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    obs.guess_started(None);
    let mut state = CoverState::new(system);
    obs.benefit_computed(system.num_sets() as u64);
    let mut chosen: Vec<SetId> = Vec::new();
    let mut spent = 0.0f64;
    let cap = max_sets.unwrap_or(usize::MAX);
    while chosen.len() < cap {
        let top = state.top_gain(audit::TOP, |id| spent + system.cost(id).value() <= budget);
        let Some((q, _)) = audit::pick_cover(&mut state, obs, audit::ORDER_GAIN, &top) else {
            break;
        };
        chosen.push(q);
        spent += system.cost(q).value();
    }
    span.exit(obs);
    Solution::from_sets(system, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;

    fn system() -> SetSystem {
        let mut b = SetSystem::builder(8);
        b.add_set([0, 1], 1.0) // gain 2
            .add_set([2, 3], 1.0) // gain 2
            .add_set([0, 1, 2, 3, 4, 5], 30.0) // gain 0.2
            .add_set([4, 5, 6, 7], 40.0) // gain 0.1
            .add_universe_set(100.0);
        b.build().unwrap()
    }

    #[test]
    fn wsc_minimizes_cost_ignoring_size() {
        let sol = greedy_weighted_set_cover(&system(), 0.5, &mut Stats::new()).unwrap();
        // Picks the two cheap pairs: cost 2, 2 sets.
        assert_eq!(sol.sets(), &[0, 1]);
        assert_eq!(sol.total_cost().value(), 2.0);
    }

    #[test]
    fn wsc_needs_many_sets_for_high_coverage() {
        let sol = greedy_weighted_set_cover(&system(), 1.0, &mut Stats::new()).unwrap();
        assert!(sol.covered() == 8);
        assert!(sol.size() >= 3, "cheap-first needs several sets");
    }

    #[test]
    fn wsc_fails_without_feasibility() {
        let mut b = SetSystem::builder(4);
        b.add_set([0], 1.0);
        let sys = b.build().unwrap();
        assert_eq!(
            greedy_weighted_set_cover(&sys, 1.0, &mut Stats::new()),
            Err(SolveError::NoSolution)
        );
    }

    #[test]
    fn max_coverage_ignores_cost() {
        let sol = greedy_max_coverage(&system(), 1, &mut Stats::new());
        // Universe has benefit 8: chosen despite cost 100.
        assert_eq!(sol.sets(), &[4]);
        assert_eq!(sol.covered(), 8);
        assert_eq!(sol.total_cost().value(), 100.0);
    }

    #[test]
    fn max_coverage_stops_when_everything_covered() {
        let sol = greedy_max_coverage(&system(), 5, &mut Stats::new());
        assert_eq!(
            sol.size(),
            1,
            "nothing left to cover after the universe set"
        );
    }

    #[test]
    fn partial_max_coverage_expensive_but_covering() {
        let sol = greedy_partial_max_coverage(&system(), 0.75, &mut Stats::new()).unwrap();
        assert!(sol.covered() >= 6);
        assert_eq!(sol.sets(), &[4], "benefit-greedy grabs the universe set");
        assert_eq!(sol.total_cost().value(), 100.0);
    }

    #[test]
    fn budgeted_respects_budget() {
        let sol = budgeted_max_coverage(&system(), 2.0, None, &mut Stats::new());
        assert_eq!(sol.sets(), &[0, 1]);
        assert!(sol.total_cost().value() <= 2.0);
    }

    #[test]
    fn budgeted_skips_unaffordable_high_gain() {
        let sol = budgeted_max_coverage(&system(), 31.0, None, &mut Stats::new());
        // After the two pairs (cost 2) the 30-cost set no longer fits 31.
        assert!(sol.total_cost().value() <= 31.0);
        assert!(sol.sets().contains(&0) && sol.sets().contains(&1));
    }

    /// The Section III counter-example: truncated budgeted max coverage
    /// covers `ck` elements while the optimum covers all `Ck`.
    #[test]
    fn budgeted_truncation_counterexample() {
        let (c, k, big_c) = (2usize, 3usize, 20usize);
        let n = big_c * k;
        let mut b = SetSystem::builder(n as u32 as usize);
        // ck singletons of weight 1 (gain 1.0)...
        for e in 0..(c * k) {
            b.add_set([e as u32], 1.0);
        }
        // ...and k blocks of C elements with weight C+1 (gain C/(C+1) < 1).
        for blk in 0..k {
            let lo = (blk * big_c) as u32;
            b.add_set(lo..lo + big_c as u32, (big_c + 1) as f64);
        }
        let sys = b.build().unwrap();
        let budget = (k * (big_c + 1)) as f64; // enough for the optimum
        let truncated = budgeted_max_coverage(&sys, budget, Some(c * k), &mut Stats::new());
        assert_eq!(
            truncated.covered(),
            c * k,
            "greedy grabs only the singletons"
        );
        // The optimum (the k blocks) covers everything.
        let blocks: Vec<SetId> = (c * k..c * k + k).map(|i| i as SetId).collect();
        assert_eq!(sys.coverage_of(&blocks).count_ones(), n);
    }

    #[test]
    fn stats_count_one_pass() {
        let mut stats = Stats::new();
        let _ = greedy_weighted_set_cover(&system(), 0.5, &mut stats);
        assert_eq!(stats.considered, 5);
        assert_eq!(stats.selections, 2);
    }
}
