//! The paper's algorithms over arbitrary set systems.
//!
//! * [`cwsc()`] — Concise Weighted Set Cover (Fig. 2): at most `k` sets, no
//!   cost guarantee, excellent in practice.
//! * [`cmc()`] — Cheap Max Coverage (Fig. 1 and the Section V-A3 ε-variant):
//!   up to `5k` (or `(1+ε)k`) sets with a `log k` cost guarantee, covering
//!   `(1−1/e)·ŝ·n` elements.
//! * [`baselines`] — the two-out-of-three heuristics from prior work that
//!   Section VI compares against.
//! * [`exact`] — branch-and-bound optimum for small instances (§VI-D).

pub mod baselines;
pub mod cmc;
pub mod cwsc;
pub mod exact;
pub mod scan;

pub use baselines::{
    budgeted_max_coverage, greedy_max_coverage, greedy_partial_max_coverage,
    greedy_weighted_set_cover,
};
pub use cmc::{
    cmc, cmc_on, cmc_within, CmcOutcome, CmcParams, LevelSchedule, Levels, CMC_COVERAGE_DISCOUNT,
};
pub use cwsc::{
    cwsc, cwsc_on, cwsc_with_target, cwsc_with_target_on, cwsc_with_target_within, cwsc_within,
};
pub use exact::{
    exact_optimal, exact_optimal_observed, exact_optimal_with_target,
    exact_optimal_with_target_observed,
};
