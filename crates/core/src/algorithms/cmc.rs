//! Cheap Max Coverage (CMC) — Figure 1, the `(1+ε)k` variant of
//! Section V-A3, and the generalized `(1+l)`-ary variant of Section V-A2.
//!
//! CMC guesses the optimal cost `B` (doubling by `1+b` until feasible),
//! partitions sets into geometric cost levels under `B`, and runs the
//! greedy maximum-coverage heuristic within per-level quotas. Theorem 4:
//! with the classic schedule it returns at most `5k` sets of total cost at
//! most `(1+b)(2⌈log₂k⌉+1)·OPT` covering at least `(1−1/e)·ŝ·n` elements;
//! Theorem 5: the ε-schedule uses at most `(1+ε)k` sets at cost
//! `O(((1+b)/ε)·log k·OPT)`.

use crate::algorithms::scan;
use crate::bitset::BitSet;
use crate::cover_state::CoverState;
use crate::engine::{
    panic_message, Certificate, Deadline, DegradeReason, Degraded, EngineError, SolveOutcome,
};
use crate::parallel::{CancelToken, ThreadPool};
use crate::set_system::{coverage_target, SetId, SetSystem};
use crate::solution::{Solution, SolveError};
use crate::telemetry::{
    audit, pack_k_target, EventLog, Observer, PhaseSpan, ThreadLocalTelemetry, TraceId,
    PHASE_GUESS, PHASE_INIT, PHASE_SELECT, PHASE_TOTAL,
};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Fraction of the requested coverage that CMC guarantees (Fig. 1 line 06).
pub const CMC_COVERAGE_DISCOUNT: f64 = 1.0 - std::f64::consts::E.recip();

/// How CMC partitions the cost range `(0, B]` into levels with quotas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LevelSchedule {
    /// Figure 1: levels `(B/2^i, B/2^{i-1}]` with quota `2^i` for
    /// `i = 1..⌈log₂k⌉` (the last clipped below at `B/k`), plus a final
    /// level `[0, B/k]` with quota `k`. At most `5k − 2` sets.
    Classic,
    /// Section V-A3: geometric levels while `εk ≥ 2^{i+1} − 2`, then a
    /// final level holding everything cheaper with quota `k`. At most
    /// `(1+ε)k` sets.
    Epsilon(f64),
    /// Section V-A2 closing remark: `(1+l)`-ary levels with quota
    /// `(1+l)^i`; `Generalized(1)` coincides with `Classic`. At most
    /// `k(1 + (1+l)²/l)` sets.
    Generalized(u32),
}

/// A concrete level partition for one budget guess `B`.
///
/// Level `i` holds sets with cost in `(lower[i], upper[i]]`; the final
/// level's range is closed below (`[0, upper]`) so zero-cost sets — which
/// the paper implicitly excludes but Definition 1 permits — always belong
/// to the cheapest level.
#[derive(Debug, Clone)]
pub struct Levels {
    /// `(lower, upper]` cost bounds per level, outermost (most expensive)
    /// first. The final level is `[0, upper]`.
    bounds: Vec<(f64, f64)>,
    /// Maximum number of sets pickable from each level (`k_i`).
    quotas: Vec<usize>,
}

impl Levels {
    /// Builds the level partition for budget `B` and size bound `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`, `budget` is not finite/positive, or the
    /// schedule's parameter is out of range (`ε > 0`, `l ≥ 1`).
    pub fn build(schedule: LevelSchedule, budget: f64, k: usize) -> Levels {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            budget.is_finite() && budget > 0.0,
            "budget must be positive and finite, got {budget}"
        );
        // Guard k = 1 explicitly: every schedule degenerates to the single
        // final level [0, B] with quota 1, but the geometric loops reach
        // that only through `log(1) = 0` edge cases (zero iterations with
        // the final bound still depending on the loop counter). Make the
        // degenerate partition unconditional rather than emergent.
        if k == 1 {
            if let LevelSchedule::Epsilon(eps) = schedule {
                assert!(eps > 0.0, "epsilon must be positive, got {eps}");
            }
            if let LevelSchedule::Generalized(l) = schedule {
                assert!(l >= 1, "l must be at least 1, got {l}");
            }
            return Levels {
                bounds: vec![(0.0, budget)],
                quotas: vec![1],
            };
        }
        let mut bounds = Vec::new();
        let mut quotas = Vec::new();
        match schedule {
            LevelSchedule::Classic => {
                // Levels 1..=⌈log₂ k⌉ with quota 2^i, clipped below at B/k.
                let levels = (k as f64).log2().ceil() as u32;
                let floor = budget / k as f64;
                for i in 1..=levels {
                    let upper = budget / 2f64.powi(i as i32 - 1);
                    let lower = (budget / 2f64.powi(i as i32)).max(floor);
                    if lower < upper {
                        bounds.push((lower, upper));
                        quotas.push(1usize << i);
                    }
                }
                bounds.push((0.0, floor));
                quotas.push(k);
            }
            LevelSchedule::Epsilon(eps) => {
                assert!(eps > 0.0, "epsilon must be positive, got {eps}");
                // Modified lines 07-14: geometric levels while εk ≥ 2^{i+1}-2.
                let mut i = 1u32;
                while eps * k as f64 >= (2f64.powi(i as i32 + 1) - 2.0)
                    && 2f64.powi(i as i32 - 1) < k as f64
                {
                    let upper = budget / 2f64.powi(i as i32 - 1);
                    let lower = budget / 2f64.powi(i as i32);
                    bounds.push((lower, upper));
                    quotas.push(1usize << i);
                    i += 1;
                }
                bounds.push((0.0, budget / 2f64.powi(i as i32 - 1)));
                quotas.push(k);
            }
            LevelSchedule::Generalized(l) => {
                assert!(l >= 1, "l must be at least 1, got {l}");
                let base = (1 + l) as f64;
                let levels = (k as f64).log(base).ceil() as u32;
                let floor = budget / k as f64;
                for i in 1..=levels {
                    let upper = budget / base.powi(i as i32 - 1);
                    let lower = (budget / base.powi(i as i32)).max(floor);
                    if lower < upper {
                        bounds.push((lower, upper));
                        quotas.push(base.powi(i as i32) as usize);
                    }
                }
                bounds.push((0.0, floor));
                quotas.push(k);
            }
        }
        Levels { bounds, quotas }
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// True when there are no levels (never produced by [`Levels::build`]).
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Quota `k_i` of level `i`.
    pub fn quota(&self, level: usize) -> usize {
        self.quotas[level]
    }

    /// The level a cost belongs to under this partition, or `None` when the
    /// cost exceeds the budget.
    pub fn level_of(&self, cost: f64) -> Option<usize> {
        let last = self.bounds.len() - 1;
        for (i, &(lower, upper)) in self.bounds.iter().enumerate() {
            let contains = if i == last {
                cost <= upper // final level is closed below: [0, upper]
            } else {
                cost > lower && cost <= upper
            };
            if contains {
                return Some(i);
            }
        }
        None
    }

    /// Sum of quotas: the maximum number of sets a single guess can select.
    pub fn max_selections(&self) -> usize {
        self.quotas.iter().sum()
    }
}

/// Tunable parameters of a CMC run.
#[derive(Debug, Clone, Copy)]
pub struct CmcParams {
    /// Size bound `k` from Definition 1.
    pub k: usize,
    /// Requested coverage fraction `ŝ`.
    pub coverage_fraction: f64,
    /// Budget growth factor `b` (Fig. 1 line 28 multiplies by `1+b`).
    pub budget_growth: f64,
    /// Level schedule (classic 5k, ε-variant, or generalized).
    pub schedule: LevelSchedule,
    /// Whether to target `(1−1/e)·ŝ·n` (faithful, Fig. 1 line 06) or the
    /// full `ŝ·n`. The discounted target is what Theorems 4–5 guarantee;
    /// the undiscounted variant is exposed for the ablation benches.
    pub discount_coverage: bool,
}

impl CmcParams {
    /// Faithful Figure 1 parameters: classic schedule, discounted target.
    pub fn classic(k: usize, coverage_fraction: f64, budget_growth: f64) -> CmcParams {
        CmcParams {
            k,
            coverage_fraction,
            budget_growth,
            schedule: LevelSchedule::Classic,
            discount_coverage: true,
        }
    }

    /// Section V-A3 parameters: at most `(1+ε)k` sets.
    pub fn epsilon(k: usize, coverage_fraction: f64, budget_growth: f64, eps: f64) -> CmcParams {
        CmcParams {
            schedule: LevelSchedule::Epsilon(eps),
            ..CmcParams::classic(k, coverage_fraction, budget_growth)
        }
    }

    /// The element target this parameter block chases over a universe of
    /// `n` elements (`ŝ·n`, discounted by `1−1/e` when
    /// [`discount_coverage`](CmcParams::discount_coverage) is set) — the
    /// same number the solver compares progress against, exposed so the
    /// serving layer can report it per answer.
    pub fn coverage_target(&self, n: usize) -> usize {
        let fraction = if self.discount_coverage {
            self.coverage_fraction * CMC_COVERAGE_DISCOUNT
        } else {
            self.coverage_fraction
        };
        coverage_target(n, fraction)
    }
}

/// Outcome of a CMC run: the solution plus the budget that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct CmcOutcome {
    /// The selected sub-collection.
    pub solution: Solution,
    /// The budget guess `B` under which the solution was found.
    pub final_budget: f64,
}

/// Runs Cheap Max Coverage (Figure 1 / Section V-A3 depending on
/// `params.schedule`).
///
/// The run reports its work through any [`Observer`]: one `guess_started`
/// per budget guess (with the guessed `B`), `level_entered` for every level
/// of that guess's schedule, `benefit_computed` counting the sets whose
/// marginal benefit is computed per guess (all of them, Fig. 1 lines
/// 04–05 — the Figure 6 metric), `set_selected` per pick, and a `"total"`
/// phase span. Passing `&mut Stats` aggregates these into the classic
/// counters (`considered`, `budget_guesses`, `selections`).
///
/// Returns [`SolveError::BudgetExhausted`] when even `B` larger than the
/// total weight of all sets cannot reach the target — impossible when a
/// universe set exists. Fig. 1's literal `until B > total` check stops
/// *before* running a guess that exceeds the total; we run that final
/// guess too, otherwise feasible instances whose optimum needs nearly the
/// whole collection would be rejected (see DESIGN.md §3).
///
/// ```
/// use scwsc_core::{algorithms::{cmc, CmcParams}, SetSystem, Stats};
///
/// let mut b = SetSystem::builder(10);
/// for e in 0..10u32 {
///     b.add_set([e], 1.0); // ten unit singletons
/// }
/// b.add_universe_set(8.0); // one cheap covering set
/// let system = b.build().unwrap();
///
/// // Theorem 4 bounds: ≤ 5k sets covering ≥ (1−1/e)·ŝ·n elements.
/// let params = CmcParams::classic(2, 1.0, 1.0);
/// let outcome = cmc(&system, &params, &mut Stats::new()).unwrap();
/// assert!(outcome.solution.size() <= 10);
/// assert!(outcome.solution.covered() >= 7); // ⌈(1−1/e)·10⌉
/// ```
pub fn cmc<O: Observer + ?Sized>(
    system: &SetSystem,
    params: &CmcParams,
    obs: &mut O,
) -> Result<CmcOutcome, SolveError> {
    if params.k == 0 {
        return Err(SolveError::ZeroSizeBound);
    }
    assert!(
        params.budget_growth > 0.0,
        "budget growth factor b must be positive"
    );

    let target = params.coverage_target(system.num_elements());
    if target == 0 {
        return Ok(CmcOutcome {
            solution: Solution::from_sets(system, Vec::new()),
            final_budget: 0.0,
        });
    }
    obs.trace_started(
        TraceId::mint(
            "cmc",
            system.num_elements() as u64,
            pack_k_target(params.k, target),
        ),
        "cmc",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let result = guess_loop(system, params, target, obs);
    span.exit(obs);
    result
}

/// The Fig. 1 outer repeat loop, wrapped by [`cmc`]'s phase span.
fn guess_loop<O: Observer + ?Sized>(
    system: &SetSystem,
    params: &CmcParams,
    target: usize,
    obs: &mut O,
) -> Result<CmcOutcome, SolveError> {
    let total_cost = system.total_cost().value();
    let mut budget = initial_budget(system, params.k);

    loop {
        obs.guess_started(Some(budget));
        let guess_span = PhaseSpan::enter(obs, PHASE_GUESS);
        let found = run_guess(system, params, budget, target, obs);
        guess_span.exit(obs);
        if let Some(solution) = found {
            return Ok(CmcOutcome {
                solution,
                final_budget: budget,
            });
        }
        if budget > total_cost {
            return Err(SolveError::BudgetExhausted);
        }
        budget *= 1.0 + params.budget_growth; // line 28
    }
}

/// Line 01: B = cost of the k cheapest sets. Guard degenerate zero
/// budgets (all-k-cheapest free) so the geometric growth can start.
fn initial_budget(system: &SetSystem, k: usize) -> f64 {
    let b0 = system.k_cheapest_cost(k).value();
    if b0 > 0.0 {
        return b0;
    }
    let min_positive = system
        .iter()
        .map(|(_, s)| s.cost().value())
        .filter(|&c| c > 0.0)
        .fold(f64::INFINITY, f64::min);
    if min_positive.is_finite() {
        min_positive
    } else {
        1.0 // every set is free; a single pass suffices
    }
}

/// One iteration of the outer repeat loop (Fig. 1 lines 03–27) for a fixed
/// budget `B`. Returns the solution when the coverage target is met.
fn run_guess<O: Observer + ?Sized>(
    system: &SetSystem,
    params: &CmcParams,
    budget: f64,
    target: usize,
    obs: &mut O,
) -> Option<Solution> {
    // Lines 04-05: fresh marginal benefits for every set.
    let init_span = PhaseSpan::enter(obs, PHASE_INIT);
    let mut state = CoverState::new(system);
    obs.benefit_computed(system.num_sets() as u64);
    init_span.exit(obs);

    let levels = Levels::build(params.schedule, budget, params.k);
    // Announce the whole schedule up front (even levels an early return
    // skips) so observers see each guess's complete level partition.
    for level in 0..levels.len() {
        obs.level_entered(level, levels.quota(level));
    }
    // Precompute each set's level under this budget so the inner argmax
    // filter is a table lookup.
    let set_level: Vec<Option<usize>> = (0..system.num_sets() as SetId)
        .map(|id| levels.level_of(system.cost(id).value()))
        .collect();

    let mut chosen: Vec<SetId> = Vec::new();
    let mut rem = target; // line 06

    let select_span = PhaseSpan::enter(obs, PHASE_SELECT);
    for level in 0..levels.len() {
        for _ in 0..levels.quota(level) {
            // Line 17: argmax of marginal benefit within the level.
            let top = state.top_benefit(audit::TOP, |id| set_level[id as usize] == Some(level));
            let Some((q, newly)) = audit::pick_cover(&mut state, obs, audit::ORDER_BENEFIT, &top)
            else {
                break; // line 18: level exhausted
            };
            chosen.push(q); // line 19
            rem = rem.saturating_sub(newly);
            if rem == 0 {
                select_span.exit(obs);
                return Some(Solution::from_sets(system, chosen)); // lines 22-23
            }
        }
    }
    select_span.exit(obs);
    None
}

/// [`cmc`] on a thread pool: speculative budget guessing plus chunked
/// benefit scans.
///
/// Two parallel layers compose (DESIGN.md §11):
///
/// 1. **Speculative guessing** — up to one budget guess per pool thread
///    (`B, (1+b)B, …`) runs concurrently. The committed result is always
///    the *smallest-budget* success; a guess is cancelled (via
///    [`CancelToken`]) only once a strictly smaller budget has succeeded,
///    so every guess the serial loop would have run completes and its
///    recorded event log replays into `obs` in budget order. The caller's
///    observer therefore sees the exact serial event stream, followed by
///    one `speculation(committed, wasted)` event per window — the only
///    counters (gated out of the exact-diff set) that differ from serial.
/// 2. **Chunked scans** — each guess's inner arg-max recounts marginal
///    benefits across the pool with serial tie-breaking (see
///    [`scan::masked_argmax`]), adding nested `"scan"` spans.
///
/// A serial pool delegates to [`cmc`] outright. For any thread count the
/// outcome (solution, order of selections, final budget) and every exact
/// counter are identical to serial.
pub fn cmc_on<O: Observer + ?Sized>(
    system: &SetSystem,
    params: &CmcParams,
    pool: &ThreadPool,
    obs: &mut O,
) -> Result<CmcOutcome, SolveError> {
    if pool.is_serial() {
        return cmc(system, params, obs);
    }
    if params.k == 0 {
        return Err(SolveError::ZeroSizeBound);
    }
    assert!(
        params.budget_growth > 0.0,
        "budget growth factor b must be positive"
    );
    let target = params.coverage_target(system.num_elements());
    if target == 0 {
        return Ok(CmcOutcome {
            solution: Solution::from_sets(system, Vec::new()),
            final_budget: 0.0,
        });
    }
    obs.trace_started(
        TraceId::mint(
            "cmc",
            system.num_elements() as u64,
            pack_k_target(params.k, target),
        ),
        "cmc",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let deadline = Deadline::unbounded();
    let result = guess_loop_speculative(system, params, target, pool, &deadline, false, obs);
    span.exit(obs);
    match result {
        Ok(SolveOutcome::Complete(outcome)) => Ok(outcome),
        Ok(SolveOutcome::Degraded(_)) => unreachable!("unbounded deadline cannot degrade"),
        Err(EngineError::Solve(e)) => Err(e),
        Err(EngineError::Panicked(_)) => {
            unreachable!("without containment, panics are re-raised")
        }
    }
}

/// [`cmc`] under a [`Deadline`]: the resilience-engine entry point
/// (DESIGN.md §12).
///
/// On expiry the run returns [`SolveOutcome::Degraded`] carrying the
/// partial selection of the budget guess that was in flight, plus a
/// [`Certificate`] (sets used, coverage vs. the `(1−1/e)·ŝ·n` target,
/// cost, exhausted level quotas, ticks) that
/// [`verify_certificate`](crate::solution::verify_certificate)
/// independently re-checks. One work tick is consumed per selection
/// attempt.
///
/// Panic isolation: each budget guess runs under `catch_unwind`; a
/// panicked guess is retried once serially (counted by the
/// `guesses_retried` telemetry event) and a second panic surfaces as
/// [`EngineError::Panicked`] instead of unwinding.
///
/// Determinism: when the deadline is tick-addressed
/// ([`Deadline::tick_deterministic`]) cross-guess speculation is disabled
/// — guesses run in serial budget order while the inner benefit scans
/// still parallelize (scans do not tick) — so the outcome classification,
/// partial solution, and tick count are identical for `Threads(1)` and
/// `Threads(N)`. Wall-clock-only deadlines keep speculation.
pub fn cmc_within<O: Observer + ?Sized>(
    system: &SetSystem,
    params: &CmcParams,
    pool: &ThreadPool,
    deadline: &Deadline,
    obs: &mut O,
) -> Result<SolveOutcome<CmcOutcome>, EngineError> {
    if params.k == 0 {
        return Err(SolveError::ZeroSizeBound.into());
    }
    assert!(
        params.budget_growth > 0.0,
        "budget growth factor b must be positive"
    );
    let target = params.coverage_target(system.num_elements());
    if target == 0 {
        return Ok(SolveOutcome::Complete(CmcOutcome {
            solution: Solution::from_sets(system, Vec::new()),
            final_budget: 0.0,
        }));
    }
    obs.trace_started(
        TraceId::mint(
            "cmc",
            system.num_elements() as u64,
            pack_k_target(params.k, target),
        ),
        "cmc",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let result = if pool.is_serial() || deadline.tick_deterministic() {
        guess_loop_within(system, params, target, pool, deadline, obs)
    } else {
        guess_loop_speculative(system, params, target, pool, deadline, true, obs)
    };
    span.exit(obs);
    result
}

/// Result of one budget-guess run.
enum GuessOutcome {
    Found(Solution),
    NotFound,
    /// Abandoned because a smaller budget already succeeded; its log is
    /// in the discarded (wasted) range by construction.
    Cancelled,
    /// The deadline expired mid-guess; the partial selection becomes the
    /// degraded outcome.
    Expired {
        partial: Vec<SetId>,
        quotas_exhausted: Vec<usize>,
        reason: DegradeReason,
    },
}

/// One speculative guess as it came back from the pool: completed, or
/// panicked with the captured payload (contained for retry or re-raise).
enum GuessAttempt {
    Done(GuessOutcome),
    Panicked(Box<dyn std::any::Any + Send>),
}

/// Level indices whose quota was fully consumed (ascending) — the
/// `quotas_exhausted` claim of a degraded certificate.
fn exhausted_quotas(levels: &Levels, counts: &[usize]) -> Vec<usize> {
    (0..levels.len())
        .filter(|&l| counts[l] == levels.quota(l))
        .collect()
}

/// Packages an expired guess's partial selection as a degraded outcome
/// with its certificate, noting the decision in the audit ledger.
#[allow(clippy::too_many_arguments)]
fn degrade<O: Observer + ?Sized>(
    system: &SetSystem,
    partial: Vec<SetId>,
    quotas_exhausted: Vec<usize>,
    reason: DegradeReason,
    target: usize,
    budget: f64,
    deadline: &Deadline,
    obs: &mut O,
) -> SolveOutcome<CmcOutcome> {
    let solution = Solution::from_sets(system, partial);
    obs.degrade_decided(reason.as_str(), solution.covered() as u64, target as u64);
    let certificate = Certificate {
        sets_used: solution.size(),
        covered: solution.covered(),
        target,
        total_cost: solution.total_cost().value(),
        quotas_exhausted,
        ticks: deadline.ticks(),
        reason,
    };
    SolveOutcome::Degraded(Degraded {
        partial: CmcOutcome {
            solution,
            final_budget: budget,
        },
        certificate,
    })
}

/// The Fig. 1 outer loop with guesses in strict serial order — the
/// tick-deterministic deadline path. Inner benefit scans still use the
/// pool (scans do not tick), so the tick stream is identical for any
/// thread count. Each guess is panic-contained and retried once.
fn guess_loop_within<O: Observer + ?Sized>(
    system: &SetSystem,
    params: &CmcParams,
    target: usize,
    pool: &ThreadPool,
    deadline: &Deadline,
    obs: &mut O,
) -> Result<SolveOutcome<CmcOutcome>, EngineError> {
    let total_cost = system.total_cost().value();
    let masks = if pool.is_serial() {
        None
    } else {
        Some(scan::build_masks(pool, system))
    };
    let mut budget = initial_budget(system, params.k);
    let mut guess_index = 0u64;

    loop {
        guess_index += 1;
        let outcome = run_contained_guess(
            system,
            params,
            budget,
            target,
            masks.as_deref(),
            pool,
            deadline,
            guess_index,
            obs,
        )?;
        match outcome {
            GuessOutcome::Found(solution) => {
                return Ok(SolveOutcome::Complete(CmcOutcome {
                    solution,
                    final_budget: budget,
                }));
            }
            GuessOutcome::Expired {
                partial,
                quotas_exhausted,
                reason,
            } => {
                return Ok(degrade(
                    system,
                    partial,
                    quotas_exhausted,
                    reason,
                    target,
                    budget,
                    deadline,
                    obs,
                ));
            }
            GuessOutcome::NotFound => {}
            GuessOutcome::Cancelled => {
                unreachable!("serial guess sequence has no speculation token")
            }
        }
        if budget > total_cost {
            return Err(SolveError::BudgetExhausted.into());
        }
        budget *= 1.0 + params.budget_growth; // line 28
    }
}

/// One panic-contained budget guess: records into a private [`EventLog`]
/// (replayed into `obs` only on normal completion, so a panicked attempt
/// contributes no events), retries once serially on panic, and maps a
/// second panic to [`EngineError::Panicked`].
#[allow(clippy::too_many_arguments)]
fn run_contained_guess<O: Observer + ?Sized>(
    system: &SetSystem,
    params: &CmcParams,
    budget: f64,
    target: usize,
    masks: Option<&[BitSet]>,
    pool: &ThreadPool,
    deadline: &Deadline,
    guess_index: u64,
    obs: &mut O,
) -> Result<GuessOutcome, EngineError> {
    let no_cancel = CancelToken::new();
    let attempt = |log: &mut EventLog| -> GuessOutcome {
        log.guess_started(Some(budget));
        let span = PhaseSpan::enter(log, PHASE_GUESS);
        deadline.fault_guess(guess_index);
        let outcome = match masks {
            Some(masks) => run_guess_masked(
                system, params, budget, target, masks, pool, &no_cancel, deadline, log,
            ),
            None => run_guess_within(system, params, budget, target, deadline, log),
        };
        span.exit(log);
        outcome
    };

    let mut log = EventLog::new();
    match catch_unwind(AssertUnwindSafe(|| attempt(&mut log))) {
        Ok(outcome) => {
            log.replay(obs);
            Ok(outcome)
        }
        Err(_) => {
            obs.guess_retried();
            let mut retry_log = EventLog::new();
            match catch_unwind(AssertUnwindSafe(|| attempt(&mut retry_log))) {
                Ok(outcome) => {
                    retry_log.replay(obs);
                    Ok(outcome)
                }
                Err(payload) => Err(EngineError::Panicked(panic_message(payload.as_ref()))),
            }
        }
    }
}

/// One deadline-aware guess with serial scans: [`run_guess`] plus a work
/// tick per selection attempt and per-level quota accounting for the
/// certificate.
fn run_guess_within(
    system: &SetSystem,
    params: &CmcParams,
    budget: f64,
    target: usize,
    deadline: &Deadline,
    log: &mut EventLog,
) -> GuessOutcome {
    let init_span = PhaseSpan::enter(log, PHASE_INIT);
    let mut state = CoverState::new(system);
    log.benefit_computed(system.num_sets() as u64);
    init_span.exit(log);

    let levels = Levels::build(params.schedule, budget, params.k);
    for level in 0..levels.len() {
        log.level_entered(level, levels.quota(level));
    }
    let set_level: Vec<Option<usize>> = (0..system.num_sets() as SetId)
        .map(|id| levels.level_of(system.cost(id).value()))
        .collect();

    let mut counts = vec![0usize; levels.len()];
    let mut chosen: Vec<SetId> = Vec::new();
    let mut rem = target;

    let select_span = PhaseSpan::enter(log, PHASE_SELECT);
    for level in 0..levels.len() {
        for _ in 0..levels.quota(level) {
            if let Err(reason) = deadline.checkpoint() {
                select_span.exit(log);
                let quotas_exhausted = exhausted_quotas(&levels, &counts);
                return GuessOutcome::Expired {
                    partial: chosen,
                    quotas_exhausted,
                    reason,
                };
            }
            let top = state.top_benefit(audit::TOP, |id| set_level[id as usize] == Some(level));
            let Some((q, newly)) = audit::pick_cover(&mut state, log, audit::ORDER_BENEFIT, &top)
            else {
                break; // level exhausted
            };
            chosen.push(q);
            counts[level] += 1;
            rem = rem.saturating_sub(newly);
            if rem == 0 {
                select_span.exit(log);
                return GuessOutcome::Found(Solution::from_sets(system, chosen));
            }
        }
    }
    select_span.exit(log);
    GuessOutcome::NotFound
}

/// The Fig. 1 outer loop run in speculative windows of one guess per
/// pool thread.
///
/// With `contain == false` (the classic [`cmc_on`] path under an
/// unbounded deadline) job panics are re-raised to the caller unchanged.
/// With `contain == true` (the [`cmc_within`] engine path) each guess
/// runs under `catch_unwind`: a panicked guess is retried once serially
/// on the calling thread (its half-recorded event log is discarded, so
/// replayed telemetry stays serial-identical) and a second panic becomes
/// [`EngineError::Panicked`].
#[allow(clippy::too_many_arguments)]
fn guess_loop_speculative<O: Observer + ?Sized>(
    system: &SetSystem,
    params: &CmcParams,
    target: usize,
    pool: &ThreadPool,
    deadline: &Deadline,
    contain: bool,
    obs: &mut O,
) -> Result<SolveOutcome<CmcOutcome>, EngineError> {
    let total_cost = system.total_cost().value();
    let masks = scan::build_masks(pool, system);
    let mut budget = initial_budget(system, params.k);
    let mut next_guess_index = 0u64;

    loop {
        // The window replicates the serial budget sequence, including the
        // final guess *after* budget exceeds the total cost (the serial
        // loop runs that one before giving up).
        let mut budgets = Vec::with_capacity(pool.threads());
        let mut exhausts = false;
        let mut b = budget;
        for _ in 0..pool.threads() {
            budgets.push(b);
            if b > total_cost {
                exhausts = true;
                break;
            }
            b *= 1.0 + params.budget_growth;
        }
        let next_budget = b;
        let base_index = next_guess_index;
        next_guess_index += budgets.len() as u64;

        let cancels: Vec<CancelToken> = budgets.iter().map(|_| CancelToken::new()).collect();
        let tasks: Vec<(usize, f64)> = budgets.iter().copied().enumerate().collect();
        let mut attempts: Vec<(EventLog, GuessAttempt)> = pool.par_map(&tasks, |&(i, guess)| {
            let mut log = EventLog::new();
            let result = catch_unwind(AssertUnwindSafe(|| {
                log.guess_started(Some(guess));
                let guess_span = PhaseSpan::enter(&mut log, PHASE_GUESS);
                deadline.fault_guess(base_index + i as u64 + 1);
                let outcome = run_guess_masked(
                    system,
                    params,
                    guess,
                    target,
                    &masks,
                    pool,
                    &cancels[i],
                    deadline,
                    &mut log,
                );
                guess_span.exit(&mut log);
                outcome
            }));
            let attempt = match result {
                Ok(outcome) => {
                    if matches!(outcome, GuessOutcome::Found(_)) {
                        // Cancel only strictly larger budgets: smaller ones
                        // may still succeed and must win the commit.
                        for token in &cancels[i + 1..] {
                            token.cancel();
                        }
                    }
                    GuessAttempt::Done(outcome)
                }
                Err(payload) => GuessAttempt::Panicked(payload),
            };
            (log, attempt)
        });

        if !contain {
            // Classic semantics: a job panic propagates to the caller.
            for (_, attempt) in &mut attempts {
                if matches!(attempt, GuessAttempt::Panicked(_)) {
                    let taken =
                        std::mem::replace(attempt, GuessAttempt::Done(GuessOutcome::NotFound));
                    let GuessAttempt::Panicked(payload) = taken else {
                        unreachable!()
                    };
                    resume_unwind(payload);
                }
            }
        }

        // Resolve the window in budget order, replaying each committed
        // guess's log — exactly the guesses the serial loop would have run,
        // up to and including the first success/expiry.
        let window = attempts.len();
        let mut committed = 0usize;
        let mut resolved: Option<Result<SolveOutcome<CmcOutcome>, EngineError>> = None;
        for (j, (log, attempt)) in attempts.iter_mut().enumerate() {
            let taken = std::mem::replace(attempt, GuessAttempt::Done(GuessOutcome::Cancelled));
            let outcome = match taken {
                GuessAttempt::Done(outcome) => {
                    log.replay(obs);
                    outcome
                }
                GuessAttempt::Panicked(_) => {
                    // Retry once, serially, on the calling thread.
                    obs.guess_retried();
                    let mut retry_log = EventLog::new();
                    let fresh = CancelToken::new();
                    let retried = catch_unwind(AssertUnwindSafe(|| {
                        retry_log.guess_started(Some(budgets[j]));
                        let guess_span = PhaseSpan::enter(&mut retry_log, PHASE_GUESS);
                        deadline.fault_guess(base_index + j as u64 + 1);
                        let outcome = run_guess_masked(
                            system,
                            params,
                            budgets[j],
                            target,
                            &masks,
                            pool,
                            &fresh,
                            deadline,
                            &mut retry_log,
                        );
                        guess_span.exit(&mut retry_log);
                        outcome
                    }));
                    match retried {
                        Ok(outcome) => {
                            retry_log.replay(obs);
                            outcome
                        }
                        Err(payload) => {
                            resolved =
                                Some(Err(EngineError::Panicked(panic_message(payload.as_ref()))));
                            break;
                        }
                    }
                }
            };
            committed = j + 1;
            match outcome {
                GuessOutcome::Found(solution) => {
                    resolved = Some(Ok(SolveOutcome::Complete(CmcOutcome {
                        solution,
                        final_budget: budgets[j],
                    })));
                    break;
                }
                GuessOutcome::Expired {
                    partial,
                    quotas_exhausted,
                    reason,
                } => {
                    resolved = Some(Ok(degrade(
                        system,
                        partial,
                        quotas_exhausted,
                        reason,
                        target,
                        budgets[j],
                        deadline,
                        obs,
                    )));
                    break;
                }
                GuessOutcome::NotFound => {}
                GuessOutcome::Cancelled => {
                    // Only a strictly smaller Found budget cancels, and
                    // resolution breaks at that budget first.
                    debug_assert!(false, "cancelled guess reached resolution");
                }
            }
        }
        obs.speculation(committed as u64, (window - committed) as u64);
        if let Some(result) = resolved {
            return result;
        }
        if exhausts {
            return Err(SolveError::BudgetExhausted.into());
        }
        budget = next_budget;
    }
}

/// One budget guess over the masked scan engine: same selections and
/// events as [`run_guess`], recorded into the task-local `log`. Consumes
/// one `deadline` work tick per selection attempt; under an unbounded
/// deadline (the classic speculative path) the checkpoint can never fail.
#[allow(clippy::too_many_arguments)]
fn run_guess_masked(
    system: &SetSystem,
    params: &CmcParams,
    budget: f64,
    target: usize,
    masks: &[BitSet],
    pool: &ThreadPool,
    cancel: &CancelToken,
    deadline: &Deadline,
    log: &mut EventLog,
) -> GuessOutcome {
    let init_span = PhaseSpan::enter(log, PHASE_INIT);
    let mut covered = BitSet::new(system.num_elements());
    // Bounds are only valid while `covered` grows, so each guess gets a
    // fresh pruned-scan state (guesses restart coverage from empty).
    let mut pruned = scan::PrunedScan::new(masks);
    log.benefit_computed(system.num_sets() as u64);
    init_span.exit(log);

    let levels = Levels::build(params.schedule, budget, params.k);
    for level in 0..levels.len() {
        log.level_entered(level, levels.quota(level));
    }
    let set_level: Vec<Option<usize>> = (0..system.num_sets() as SetId)
        .map(|id| levels.level_of(system.cost(id).value()))
        .collect();

    let tls = ThreadLocalTelemetry::new(pool.threads());
    let mut counts = vec![0usize; levels.len()];
    let mut chosen: Vec<SetId> = Vec::new();
    let mut rem = target;

    let select_span = PhaseSpan::enter(log, PHASE_SELECT);
    for level in 0..levels.len() {
        for _ in 0..levels.quota(level) {
            if cancel.is_cancelled() {
                select_span.exit(log);
                return GuessOutcome::Cancelled;
            }
            if let Err(reason) = deadline.checkpoint() {
                select_span.exit(log);
                let quotas_exhausted = exhausted_quotas(&levels, &counts);
                return GuessOutcome::Expired {
                    partial: chosen,
                    quotas_exhausted,
                    reason,
                };
            }
            let top = scan::masked_top_pruned(
                pool,
                &tls,
                system,
                masks,
                &mut pruned,
                &covered,
                |id| set_level[id as usize] == Some(level),
                |_| true,
                0,
                scan::ScanOrder::Benefit,
                audit::TOP,
                log,
            );
            tls.replay(log);
            let Some(q) = audit::record_cover_round(log, audit::ORDER_BENEFIT, &top) else {
                break; // level exhausted
            };
            let win = top[0];
            audit::charge_masked(log, system, &covered, win);
            chosen.push(q);
            counts[level] += 1;
            covered.union_with(&masks[q as usize]);
            log.set_selected(q as u64, win.mben as u64, win.cost.value());
            rem = rem.saturating_sub(win.mben);
            if rem == 0 {
                select_span.exit(log);
                return GuessOutcome::Found(Solution::from_sets(system, chosen));
            }
        }
    }
    select_span.exit(log);
    GuessOutcome::NotFound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::{verify, Requirements};
    use crate::stats::Stats;

    fn system() -> SetSystem {
        let mut b = SetSystem::builder(12);
        b.add_set([0], 1.0)
            .add_set([1], 1.0)
            .add_set([2], 1.0)
            .add_set([0, 1, 2, 3, 4, 5], 6.0)
            .add_set([6, 7, 8, 9, 10, 11], 7.0)
            .add_universe_set(30.0);
        b.build().unwrap()
    }

    #[test]
    fn classic_levels_for_k4() {
        let l = Levels::build(LevelSchedule::Classic, 8.0, 4);
        // ⌈log2 4⌉ = 2 levels + final: (4,8] q2, (2,4] q4, [0,2] q4
        assert_eq!(l.len(), 3);
        assert_eq!(l.quota(0), 2);
        assert_eq!(l.quota(1), 4);
        assert_eq!(l.quota(2), 4);
        assert_eq!(l.level_of(8.0), Some(0));
        assert_eq!(l.level_of(5.0), Some(0));
        assert_eq!(l.level_of(4.0), Some(1));
        assert_eq!(l.level_of(2.0), Some(2));
        assert_eq!(l.level_of(0.0), Some(2), "zero cost in final level");
        assert_eq!(l.level_of(8.1), None, "above budget excluded");
    }

    #[test]
    fn classic_levels_k1_single_level() {
        let l = Levels::build(LevelSchedule::Classic, 10.0, 1);
        assert_eq!(l.len(), 1);
        assert_eq!(l.quota(0), 1);
        assert_eq!(l.level_of(10.0), Some(0));
        assert_eq!(l.level_of(11.0), None);
    }

    #[test]
    fn classic_levels_clip_at_budget_over_k() {
        // k = 3: ⌈log2 3⌉ = 2 levels; level 2's lower bound clips at B/3.
        let l = Levels::build(LevelSchedule::Classic, 12.0, 3);
        assert_eq!(l.len(), 3);
        // (6,12] q2, (4,6] q4 (clipped: B/4=3 < B/3=4), [0,4] q3
        assert_eq!(l.level_of(5.0), Some(1));
        assert_eq!(l.level_of(4.0), Some(2));
        assert_eq!(l.max_selections(), 2 + 4 + 3);
    }

    #[test]
    fn classic_max_selections_bounded_by_5k() {
        for k in 1..=64 {
            let l = Levels::build(LevelSchedule::Classic, 100.0, k);
            assert!(
                l.max_selections() <= 5 * k,
                "k={k}: {} > 5k",
                l.max_selections()
            );
        }
    }

    #[test]
    fn epsilon_levels_match_paper_example() {
        // Paper example: k = 12, ε = 0.5 -> levels q2, q4, final q12.
        let l = Levels::build(LevelSchedule::Epsilon(0.5), 8.0, 12);
        assert_eq!(l.len(), 3);
        assert_eq!(l.quota(0), 2);
        assert_eq!(l.quota(1), 4);
        assert_eq!(l.quota(2), 12);
        // H1=(4,8], H2=(2,4], H3=[0,2]
        assert_eq!(l.level_of(3.0), Some(1));
        assert_eq!(l.level_of(2.0), Some(2));
        assert_eq!(l.max_selections(), 18); // (1+ε)k = 18
    }

    #[test]
    fn epsilon_max_selections_bounded() {
        for &eps in &[0.25, 0.5, 1.0, 2.0] {
            for k in 1..=40 {
                let l = Levels::build(LevelSchedule::Epsilon(eps), 50.0, k);
                let bound = ((1.0 + eps) * k as f64).floor() as usize;
                assert!(
                    l.max_selections() <= bound.max(k),
                    "eps={eps} k={k}: {} > {}",
                    l.max_selections(),
                    bound
                );
            }
        }
    }

    #[test]
    fn generalized_l1_equals_classic() {
        for k in [1usize, 2, 3, 7, 16] {
            let a = Levels::build(LevelSchedule::Classic, 64.0, k);
            let b = Levels::build(LevelSchedule::Generalized(1), 64.0, k);
            assert_eq!(a.quotas, b.quotas, "k={k}");
            assert_eq!(a.bounds, b.bounds, "k={k}");
        }
    }

    #[test]
    fn generalized_l3_has_fewer_levels() {
        let a = Levels::build(LevelSchedule::Classic, 64.0, 16);
        let b = Levels::build(LevelSchedule::Generalized(3), 64.0, 16);
        assert!(b.len() < a.len());
    }

    #[test]
    fn generalized_high_l_single_level_for_small_k() {
        // base 6 with k=4: ceil(log_6 4) = 1 level + final.
        let l = Levels::build(LevelSchedule::Generalized(5), 60.0, 4);
        assert!(l.len() <= 2);
        assert_eq!(l.quota(l.len() - 1), 4, "final level quota is k");
        assert_eq!(l.level_of(60.0), Some(0));
        assert_eq!(l.level_of(61.0), None);
    }

    #[test]
    fn generalized_k1() {
        let l = Levels::build(LevelSchedule::Generalized(3), 10.0, 1);
        assert_eq!(l.len(), 1);
        assert_eq!(l.quota(0), 1);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn levels_reject_nonpositive_budget() {
        Levels::build(LevelSchedule::Classic, 0.0, 3);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn levels_reject_nonpositive_epsilon() {
        Levels::build(LevelSchedule::Epsilon(0.0), 10.0, 3);
    }

    #[test]
    #[should_panic(expected = "l must be at least 1")]
    fn levels_reject_zero_l() {
        Levels::build(LevelSchedule::Generalized(0), 10.0, 3);
    }

    #[test]
    fn cmc_meets_discounted_coverage_and_size_bound() {
        let sys = system();
        let mut stats = Stats::new();
        let params = CmcParams::classic(2, 0.75, 1.0);
        let out = cmc(&sys, &params, &mut stats).unwrap();
        let discounted = coverage_target(12, 0.75 * CMC_COVERAGE_DISCOUNT);
        let req = Requirements {
            max_sets: 5 * 2,
            min_covered: discounted,
        };
        let v = verify(&sys, &out.solution, req);
        assert!(v.is_valid(), "{v:?}");
        assert!(stats.budget_guesses >= 1);
        assert_eq!(
            stats.considered,
            stats.budget_guesses as u64 * sys.num_sets() as u64
        );
    }

    #[test]
    fn cmc_budget_grows_until_feasible() {
        let sys = system();
        // High coverage forces budgets big enough for the large sets.
        let params = CmcParams::classic(2, 1.0, 1.0);
        let mut stats = Stats::new();
        let out = cmc(&sys, &params, &mut stats).unwrap();
        assert!(out.solution.covered() >= coverage_target(12, CMC_COVERAGE_DISCOUNT));
        assert!(
            out.final_budget >= 6.0,
            "needs the big sets: {}",
            out.final_budget
        );
    }

    #[test]
    fn cmc_zero_k_and_zero_target() {
        let sys = system();
        assert_eq!(
            cmc(&sys, &CmcParams::classic(0, 0.5, 1.0), &mut Stats::new()),
            Err(SolveError::ZeroSizeBound)
        );
        let out = cmc(&sys, &CmcParams::classic(2, 0.0, 1.0), &mut Stats::new()).unwrap();
        assert_eq!(out.solution.size(), 0);
    }

    #[test]
    fn cmc_budget_exhausted_without_universe() {
        let mut b = SetSystem::builder(4);
        b.add_set([0], 1.0).add_set([1], 1.0);
        let sys = b.build().unwrap();
        // k=1, need (1-1/e)*1.0*4 = ceil(2.52) = 3 covered: impossible.
        assert_eq!(
            cmc(&sys, &CmcParams::classic(1, 1.0, 1.0), &mut Stats::new()),
            Err(SolveError::BudgetExhausted)
        );
    }

    #[test]
    fn cmc_final_guess_above_total_cost_runs() {
        // Optimal needs the most expensive set; ensure the guess loop
        // reaches a budget admitting it (the DESIGN.md §3 off-by-one fix).
        let mut b = SetSystem::builder(10);
        b.add_set([0], 1.0).add_universe_set(1.9);
        let sys = b.build().unwrap();
        let params = CmcParams::classic(1, 1.0, 10.0); // huge growth factor
        let out = cmc(&sys, &params, &mut Stats::new()).unwrap();
        assert_eq!(out.solution.sets(), &[1]);
    }

    #[test]
    fn cmc_zero_cost_sets_are_usable() {
        let mut b = SetSystem::builder(6);
        b.add_set([0, 1, 2], 0.0)
            .add_set([3, 4, 5], 0.0)
            .add_universe_set(5.0);
        let sys = b.build().unwrap();
        let out = cmc(&sys, &CmcParams::classic(2, 1.0, 1.0), &mut Stats::new()).unwrap();
        assert!(out.solution.covered() >= coverage_target(6, CMC_COVERAGE_DISCOUNT));
    }

    #[test]
    fn cmc_epsilon_respects_size_bound() {
        let sys = system();
        for &eps in &[0.5, 1.0, 2.0] {
            let params = CmcParams::epsilon(2, 0.9, 1.0, eps);
            let out = cmc(&sys, &params, &mut Stats::new()).unwrap();
            let bound = ((1.0 + eps) * 2.0).floor() as usize;
            assert!(
                out.solution.size() <= bound.max(2),
                "eps={eps}: {} sets",
                out.solution.size()
            );
        }
    }

    #[test]
    fn cmc_undiscounted_target_covers_more() {
        let sys = system();
        let mut p = CmcParams::classic(2, 0.9, 1.0);
        p.discount_coverage = false;
        let out = cmc(&sys, &p, &mut Stats::new()).unwrap();
        assert!(out.solution.covered() >= coverage_target(12, 0.9));
    }

    #[test]
    #[should_panic(expected = "budget growth")]
    fn cmc_rejects_nonpositive_b() {
        let sys = system();
        let _ = cmc(&sys, &CmcParams::classic(2, 0.5, 0.0), &mut Stats::new());
    }

    #[test]
    fn epsilon_levels_k1_single_level() {
        for &eps in &[0.25, 0.5, 2.0] {
            let l = Levels::build(LevelSchedule::Epsilon(eps), 10.0, 1);
            assert_eq!(l.len(), 1, "eps={eps}");
            assert_eq!(l.quota(0), 1);
            assert_eq!(l.level_of(10.0), Some(0), "whole (0, B] range covered");
            assert_eq!(l.level_of(0.0), Some(0));
            assert_eq!(l.level_of(10.1), None);
        }
    }

    #[test]
    fn generalized_levels_k1_single_level() {
        for l_param in [1u32, 3, 9] {
            let l = Levels::build(LevelSchedule::Generalized(l_param), 10.0, 1);
            assert_eq!(l.len(), 1, "l={l_param}");
            assert_eq!(l.quota(0), 1);
            assert_eq!(l.level_of(10.0), Some(0));
            assert_eq!(l.level_of(0.0), Some(0));
        }
    }

    /// Deterministic pseudo-random system (LCG) for parallel-vs-serial
    /// comparisons.
    fn lcg_system(num_elements: usize, num_sets: usize, seed: u64) -> SetSystem {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut b = SetSystem::builder(num_elements);
        for _ in 0..num_sets {
            let len = 1 + next() % 6;
            let members: Vec<u32> = (0..len).map(|_| (next() % num_elements) as u32).collect();
            let cost = 1.0 + (next() % 100) as f64 / 10.0;
            b.add_set(members, cost);
        }
        b.add_universe_set(num_elements as f64 * 2.0);
        b.build().unwrap()
    }

    #[test]
    fn cmc_on_matches_serial_for_any_thread_count() {
        use crate::parallel::{ThreadPool, Threads};
        use crate::telemetry::MetricsRecorder;
        let sys = lcg_system(200, 64, 42);
        for schedule in [LevelSchedule::Classic, LevelSchedule::Epsilon(0.5)] {
            let params = CmcParams {
                schedule,
                ..CmcParams::classic(4, 0.9, 0.5)
            };
            let mut sm = MetricsRecorder::new();
            let serial = cmc(&sys, &params, &mut sm).unwrap();
            for n in [2usize, 4] {
                let pool = ThreadPool::new(Threads::new(n));
                let mut pm = MetricsRecorder::new();
                let par = cmc_on(&sys, &params, &pool, &mut pm).unwrap();
                assert_eq!(par.solution, serial.solution, "threads {n}");
                assert_eq!(par.final_budget, serial.final_budget);
                assert_eq!(pm.guesses, sm.guesses);
                assert_eq!(pm.selections, sm.selections);
                assert_eq!(pm.benefits_computed, sm.benefits_computed);
                assert_eq!(pm.marginal_benefit_hist, sm.marginal_benefit_hist);
                // Every serial guess is committed, never more or fewer.
                assert_eq!(pm.guesses_committed, sm.guesses);
                assert_eq!(sm.guesses_committed, 0, "serial never speculates");
            }
        }
    }

    #[test]
    fn cmc_on_budget_exhaustion_matches_serial() {
        use crate::parallel::{ThreadPool, Threads};
        use crate::telemetry::MetricsRecorder;
        let mut b = SetSystem::builder(4);
        b.add_set([0], 1.0).add_set([1], 1.0);
        let sys = b.build().unwrap();
        let params = CmcParams::classic(1, 1.0, 1.0);
        let mut sm = MetricsRecorder::new();
        let serial = cmc(&sys, &params, &mut sm);
        let pool = ThreadPool::new(Threads::new(4));
        let mut pm = MetricsRecorder::new();
        let par = cmc_on(&sys, &params, &pool, &mut pm);
        assert_eq!(par, serial);
        assert_eq!(par.unwrap_err(), SolveError::BudgetExhausted);
        assert_eq!(pm.guesses, sm.guesses, "exhaustion runs the same guesses");
    }

    mod within {
        use super::*;
        use crate::engine::{Deadline, DegradeReason, SolveOutcome};
        use crate::parallel::{ThreadPool, Threads};
        use crate::solution::verify_certificate;
        use crate::telemetry::MetricsRecorder;
        use std::time::Duration;

        fn chain_system(n: usize) -> SetSystem {
            let mut b = SetSystem::builder(n);
            for i in 0..n {
                b.add_set([i as u32], 1.0 + (i % 3) as f64);
            }
            b.add_universe_set(100.0 * n as f64);
            b.build().unwrap()
        }

        #[test]
        fn unbounded_deadline_matches_plain_cmc() {
            let sys = chain_system(12);
            let params = CmcParams::classic(6, 0.75, 1.0);
            let serial = cmc(&sys, &params, &mut MetricsRecorder::new()).unwrap();
            for threads in [1, 4] {
                let pool = ThreadPool::new(Threads::new(threads));
                let deadline = Deadline::unbounded();
                let out = cmc_within(&sys, &params, &pool, &deadline, &mut MetricsRecorder::new())
                    .unwrap();
                match out {
                    SolveOutcome::Complete(outcome) => assert_eq!(outcome, serial),
                    SolveOutcome::Degraded(_) => panic!("unbounded deadline degraded"),
                }
            }
        }

        #[test]
        fn tick_budget_degrades_with_verifiable_certificate() {
            let sys = chain_system(16);
            let params = CmcParams::classic(8, 1.0, 1.0);
            let pool = ThreadPool::new(Threads::serial());
            let deadline = Deadline::unbounded().with_tick_budget(3);
            let out =
                cmc_within(&sys, &params, &pool, &deadline, &mut MetricsRecorder::new()).unwrap();
            let SolveOutcome::Degraded(d) = out else {
                panic!("3 ticks cannot cover 16 singleton elements");
            };
            assert_eq!(d.certificate.reason, DegradeReason::TickBudget);
            assert!(d.certificate.ticks >= 3);
            let check = verify_certificate(&sys, &d.partial.solution, &d.certificate);
            assert!(check.is_valid(), "{check:?}");
        }

        #[test]
        fn tick_budget_outcome_is_thread_count_invariant() {
            let sys = chain_system(14);
            let params = CmcParams::classic(7, 1.0, 1.0);
            for budget in [0, 1, 2, 5, 9, 50] {
                let run = |threads: usize| {
                    let pool = ThreadPool::new(Threads::new(threads));
                    let deadline = Deadline::unbounded().with_tick_budget(budget);
                    let mut m = MetricsRecorder::new();
                    let out = cmc_within(&sys, &params, &pool, &deadline, &mut m).unwrap();
                    (out, deadline.ticks(), m.guesses, m.selections)
                };
                assert_eq!(run(1), run(4), "tick budget {budget}");
            }
        }

        #[test]
        fn zero_wall_clock_degrades_immediately() {
            let sys = chain_system(8);
            let params = CmcParams::classic(4, 1.0, 1.0);
            for threads in [1, 4] {
                let pool = ThreadPool::new(Threads::new(threads));
                let deadline = Deadline::unbounded().with_wall_clock(Duration::ZERO);
                let out = cmc_within(&sys, &params, &pool, &deadline, &mut MetricsRecorder::new())
                    .unwrap();
                let SolveOutcome::Degraded(d) = out else {
                    panic!("zero wall clock must degrade");
                };
                assert_eq!(d.certificate.reason, DegradeReason::WallClock);
                assert!(verify_certificate(&sys, &d.partial.solution, &d.certificate).is_valid());
            }
        }

        #[test]
        fn external_cancellation_degrades_with_reason() {
            let sys = chain_system(8);
            let params = CmcParams::classic(4, 1.0, 1.0);
            let pool = ThreadPool::new(Threads::serial());
            let deadline = Deadline::unbounded();
            deadline.cancel();
            let out =
                cmc_within(&sys, &params, &pool, &deadline, &mut MetricsRecorder::new()).unwrap();
            let SolveOutcome::Degraded(d) = out else {
                panic!("cancelled deadline must degrade");
            };
            assert_eq!(d.certificate.reason, DegradeReason::Cancelled);
        }

        #[test]
        fn zero_k_is_a_solve_error() {
            let sys = chain_system(4);
            let params = CmcParams::classic(0, 1.0, 1.0);
            let pool = ThreadPool::new(Threads::serial());
            let err = cmc_within(
                &sys,
                &params,
                &pool,
                &Deadline::unbounded(),
                &mut MetricsRecorder::new(),
            )
            .unwrap_err();
            assert!(matches!(
                err,
                crate::engine::EngineError::Solve(SolveError::ZeroSizeBound)
            ));
        }
    }

    #[cfg(feature = "fault-inject")]
    mod within_faults {
        use super::*;
        use crate::engine::{Deadline, EngineError, FaultPlan, SolveOutcome};
        use crate::parallel::{ThreadPool, Threads};
        use crate::telemetry::MetricsRecorder;

        fn system() -> SetSystem {
            let mut b = SetSystem::builder(10);
            for i in 0..10 {
                b.add_set([i as u32], 1.0);
            }
            b.add_universe_set(500.0);
            b.build().unwrap()
        }

        #[test]
        fn one_shot_guess_panic_is_retried_to_completion() {
            let sys = system();
            let params = CmcParams::classic(5, 1.0, 1.0);
            let clean = cmc(&sys, &params, &mut MetricsRecorder::new()).unwrap();
            for threads in [1, 4] {
                let pool = ThreadPool::new(Threads::new(threads));
                let deadline =
                    Deadline::unbounded().with_fault_plan(FaultPlan::new().panic_guess_once(1));
                let mut m = MetricsRecorder::new();
                let out = cmc_within(&sys, &params, &pool, &deadline, &mut m).unwrap();
                match out {
                    SolveOutcome::Complete(outcome) => assert_eq!(outcome, clean),
                    SolveOutcome::Degraded(_) => panic!("fault retry must complete"),
                }
                assert_eq!(m.guesses_retried, 1, "threads {threads}");
            }
        }

        #[test]
        fn persistent_guess_fault_is_a_structured_error() {
            let sys = system();
            let params = CmcParams::classic(5, 1.0, 1.0);
            for threads in [1, 4] {
                let pool = ThreadPool::new(Threads::new(threads));
                let deadline =
                    Deadline::unbounded().with_fault_plan(FaultPlan::new().fail_guess(1));
                let mut m = MetricsRecorder::new();
                let err = cmc_within(&sys, &params, &pool, &deadline, &mut m).unwrap_err();
                assert!(matches!(err, EngineError::Panicked(_)), "threads {threads}");
                assert_eq!(m.guesses_retried, 1);
            }
        }

        #[test]
        fn retried_guess_replays_serial_identical_telemetry() {
            let sys = system();
            let params = CmcParams::classic(5, 1.0, 1.0);
            let mut clean = MetricsRecorder::new();
            cmc(&sys, &params, &mut clean).unwrap();
            let pool = ThreadPool::new(Threads::serial());
            let deadline =
                Deadline::unbounded().with_fault_plan(FaultPlan::new().panic_guess_once(1));
            let mut faulted = MetricsRecorder::new();
            cmc_within(&sys, &params, &pool, &deadline, &mut faulted)
                .unwrap()
                .expect_complete("retry completes");
            // The panicked attempt's half-recorded log was discarded, so
            // exact-diff counters match a fault-free serial run.
            assert_eq!(faulted.guesses, clean.guesses);
            assert_eq!(faulted.selections, clean.selections);
            assert_eq!(faulted.benefits_computed, clean.benefits_computed);
        }
    }
}
