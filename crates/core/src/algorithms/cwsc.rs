//! Concise Weighted Set Cover (CWSC) — Figure 2 of the paper.
//!
//! CWSC adapts the partial weighted set cover heuristic (pick the set with
//! the highest marginal gain `|MBen|/Cost`) with one extra rule that makes
//! the size constraint hold by construction: with `i` picks remaining and
//! `rem` elements still to cover, only sets with `|MBen(s)| ≥ rem/i` are
//! eligible. It returns at most `k` sets but carries no cost guarantee
//! (Section V-B); empirically it matches CMC's quality at a fraction of the
//! runtime (Tables IV–V).

use crate::algorithms::scan;
use crate::bitset::BitSet;
use crate::cover_state::CoverState;
use crate::engine::{
    panic_message, Certificate, Deadline, DegradeReason, Degraded, EngineError, SolveOutcome,
};
use crate::parallel::ThreadPool;
use crate::set_system::{coverage_target, SetId, SetSystem};
use crate::solution::{Solution, SolveError};
use crate::telemetry::{
    audit, pack_k_target, EventLog, Observer, PhaseSpan, ThreadLocalTelemetry, TraceId, PHASE_INIT,
    PHASE_SELECT, PHASE_TOTAL,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs CWSC: at most `k` sets covering at least `⌈coverage_fraction·n⌉`
/// elements.
///
/// Returns [`SolveError::NoSolution`] when some iteration has no set with
/// the required marginal benefit (Fig. 2 line 07); this cannot happen when
/// the system contains a universe set. A zero coverage target returns the
/// empty solution (cost 0), the unique optimum for that degenerate input.
///
/// The run reports its work through any [`Observer`]: one `guess_started`
/// for the single round, `benefit_computed` for every set whose marginal
/// benefit is computed — all of them (Fig. 2 lines 03–04), the unoptimized
/// count plotted in Figure 6 — `set_selected` per pick, and a `"total"`
/// phase span. Passing `&mut Stats` aggregates these into the classic
/// counters, as below.
///
/// ```
/// use scwsc_core::{algorithms::cwsc, SetSystem, Stats};
///
/// let mut b = SetSystem::builder(8);
/// b.add_set([0, 1, 2, 3], 4.0)   // half the elements, weight 4
///     .add_set([4, 5], 1.0)
///     .add_set([6, 7], 1.0)
///     .add_universe_set(100.0);  // Definition 1's feasibility set
/// let system = b.build().unwrap();
///
/// let solution = cwsc(&system, 3, 0.75, &mut Stats::new()).unwrap();
/// assert!(solution.size() <= 3);
/// assert!(solution.covered() >= 6); // ⌈0.75 · 8⌉
/// assert_eq!(solution.total_cost().value(), 6.0); // 4 + 1 + 1
/// ```
pub fn cwsc<O: Observer + ?Sized>(
    system: &SetSystem,
    k: usize,
    coverage_fraction: f64,
    obs: &mut O,
) -> Result<Solution, SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroSizeBound);
    }
    let target = coverage_target(system.num_elements(), coverage_fraction);
    cwsc_with_target(system, k, target, obs)
}

/// CWSC with an explicit element-count target instead of a fraction.
pub fn cwsc_with_target<O: Observer + ?Sized>(
    system: &SetSystem,
    k: usize,
    target: usize,
    obs: &mut O,
) -> Result<Solution, SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroSizeBound);
    }
    if target == 0 {
        return Ok(Solution::from_sets(system, Vec::new()));
    }
    obs.trace_started(
        TraceId::mint(
            "cwsc",
            system.num_elements() as u64,
            pack_k_target(k, target),
        ),
        "cwsc",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let result = run(system, k, target, obs);
    span.exit(obs);
    result
}

/// [`cwsc`] on a thread pool: the per-round arg-max scan is chunked
/// across workers.
///
/// Deterministic: for any thread count the selected sets, their order,
/// the final solution, and every exact counter are identical to the
/// serial [`cwsc`] (DESIGN.md §11). A serial pool delegates to [`cwsc`]
/// outright, so `--threads 1` is byte-for-byte the serial code path. The
/// only observable difference under `N > 1` is additional `"scan"` phase
/// spans — one per worker chunk per round, nested under `"select"`.
pub fn cwsc_on<O: Observer + ?Sized>(
    system: &SetSystem,
    k: usize,
    coverage_fraction: f64,
    pool: &ThreadPool,
    obs: &mut O,
) -> Result<Solution, SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroSizeBound);
    }
    let target = coverage_target(system.num_elements(), coverage_fraction);
    cwsc_with_target_on(system, k, target, pool, obs)
}

/// [`cwsc_with_target`] on a thread pool; see [`cwsc_on`].
pub fn cwsc_with_target_on<O: Observer + ?Sized>(
    system: &SetSystem,
    k: usize,
    target: usize,
    pool: &ThreadPool,
    obs: &mut O,
) -> Result<Solution, SolveError> {
    if pool.is_serial() {
        return cwsc_with_target(system, k, target, obs);
    }
    if k == 0 {
        return Err(SolveError::ZeroSizeBound);
    }
    if target == 0 {
        return Ok(Solution::from_sets(system, Vec::new()));
    }
    obs.trace_started(
        TraceId::mint(
            "cwsc",
            system.num_elements() as u64,
            pack_k_target(k, target),
        ),
        "cwsc",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let result = run_parallel(system, k, target, pool, obs);
    span.exit(obs);
    result
}

/// [`cwsc`] under a [`Deadline`]: the resilience-engine entry point
/// (DESIGN.md §12).
///
/// One work tick is consumed per selection round. On expiry the picks made
/// so far become a [`SolveOutcome::Degraded`] partial solution with a
/// [`Certificate`] (`quotas_exhausted` is always empty — CWSC has no cost
/// levels) that
/// [`verify_certificate`](crate::solution::verify_certificate) re-checks.
///
/// CWSC is a single greedy round, so there is no per-guess retry: the
/// round runs under `catch_unwind` with its telemetry recorded into a
/// private [`EventLog`] (replayed only on normal completion), and a panic
/// surfaces as [`EngineError::Panicked`].
///
/// Determinism: the tick stream counts rounds, which are identical for
/// any thread count (the parallel arg-max is exact; DESIGN.md §11), so
/// outcome classification, partial solution, and tick count match between
/// `Threads(1)` and `Threads(N)` under tick-addressed deadlines.
pub fn cwsc_within<O: Observer + ?Sized>(
    system: &SetSystem,
    k: usize,
    coverage_fraction: f64,
    pool: &ThreadPool,
    deadline: &Deadline,
    obs: &mut O,
) -> Result<SolveOutcome<Solution>, EngineError> {
    if k == 0 {
        return Err(SolveError::ZeroSizeBound.into());
    }
    let target = coverage_target(system.num_elements(), coverage_fraction);
    cwsc_with_target_within(system, k, target, pool, deadline, obs)
}

/// [`cwsc_within`] with an explicit element-count target.
pub fn cwsc_with_target_within<O: Observer + ?Sized>(
    system: &SetSystem,
    k: usize,
    target: usize,
    pool: &ThreadPool,
    deadline: &Deadline,
    obs: &mut O,
) -> Result<SolveOutcome<Solution>, EngineError> {
    if k == 0 {
        return Err(SolveError::ZeroSizeBound.into());
    }
    if target == 0 {
        return Ok(SolveOutcome::Complete(Solution::from_sets(
            system,
            Vec::new(),
        )));
    }
    obs.trace_started(
        TraceId::mint(
            "cwsc",
            system.num_elements() as u64,
            pack_k_target(k, target),
        ),
        "cwsc",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let mut log = EventLog::new();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        if pool.is_serial() {
            run_within_serial(system, k, target, deadline, &mut log)
        } else {
            run_within_masked(system, k, target, pool, deadline, &mut log)
        }
    }));
    let result = match caught {
        Ok(round) => {
            log.replay(obs);
            match round {
                RoundOutcome::Done(result) => result
                    .map(SolveOutcome::Complete)
                    .map_err(EngineError::Solve),
                RoundOutcome::Expired { partial, reason } => {
                    let solution = Solution::from_sets(system, partial);
                    obs.degrade_decided(reason.as_str(), solution.covered() as u64, target as u64);
                    let certificate = Certificate {
                        sets_used: solution.size(),
                        covered: solution.covered(),
                        target,
                        total_cost: solution.total_cost().value(),
                        quotas_exhausted: Vec::new(),
                        ticks: deadline.ticks(),
                        reason,
                    };
                    Ok(SolveOutcome::Degraded(Degraded {
                        partial: solution,
                        certificate,
                    }))
                }
            }
        }
        Err(payload) => Err(EngineError::Panicked(panic_message(payload.as_ref()))),
    };
    span.exit(obs);
    result
}

/// How one deadline-aware CWSC round ended.
enum RoundOutcome {
    Done(Result<Solution, SolveError>),
    Expired {
        partial: Vec<SetId>,
        reason: DegradeReason,
    },
}

/// [`run`] plus a work tick per selection round.
fn run_within_serial(
    system: &SetSystem,
    k: usize,
    target: usize,
    deadline: &Deadline,
    log: &mut EventLog,
) -> RoundOutcome {
    log.guess_started(None);
    let init_span = PhaseSpan::enter(log, PHASE_INIT);
    let mut state = CoverState::new(system);
    log.benefit_computed(system.num_sets() as u64);
    init_span.exit(log);

    let mut chosen: Vec<SetId> = Vec::with_capacity(k);
    let mut rem = target;

    let select_span = PhaseSpan::enter(log, PHASE_SELECT);
    for i in (1..=k).rev() {
        if let Err(reason) = deadline.checkpoint() {
            select_span.exit(log);
            return RoundOutcome::Expired {
                partial: chosen,
                reason,
            };
        }
        let i_u = i as u64;
        let rem_u = rem as u64;
        let top = state.top_gain(audit::TOP, |id| {
            i_u * state.marginal_benefit(id) as u64 >= rem_u
        });
        let Some((q, newly)) = audit::pick_cover(&mut state, log, audit::ORDER_GAIN, &top) else {
            select_span.exit(log);
            return RoundOutcome::Done(Err(SolveError::NoSolution));
        };
        chosen.push(q);
        rem = rem.saturating_sub(newly);
        if rem == 0 {
            select_span.exit(log);
            return RoundOutcome::Done(Ok(Solution::from_sets(system, chosen)));
        }
    }
    select_span.exit(log);
    RoundOutcome::Done(Err(SolveError::NoSolution))
}

/// [`run_parallel`] plus a work tick per selection round. The tick
/// placement matches [`run_within_serial`] exactly (scans do not tick).
fn run_within_masked(
    system: &SetSystem,
    k: usize,
    target: usize,
    pool: &ThreadPool,
    deadline: &Deadline,
    log: &mut EventLog,
) -> RoundOutcome {
    log.guess_started(None);
    let init_span = PhaseSpan::enter(log, PHASE_INIT);
    let masks = scan::build_masks(pool, system);
    let mut pruned = scan::PrunedScan::new(&masks);
    let mut covered = BitSet::new(system.num_elements());
    log.benefit_computed(system.num_sets() as u64);
    init_span.exit(log);

    let tls = ThreadLocalTelemetry::new(pool.threads());
    let mut chosen: Vec<SetId> = Vec::with_capacity(k);
    let mut rem = target;

    let select_span = PhaseSpan::enter(log, PHASE_SELECT);
    for i in (1..=k).rev() {
        if let Err(reason) = deadline.checkpoint() {
            select_span.exit(log);
            return RoundOutcome::Expired {
                partial: chosen,
                reason,
            };
        }
        let i_u = i as u64;
        let rem_u = rem as u64;
        // Smallest mben passing the `i·|MBen| >= rem` floor below.
        let floor = rem.div_ceil(i);
        let top = scan::masked_top_pruned(
            pool,
            &tls,
            system,
            &masks,
            &mut pruned,
            &covered,
            |_| true,
            |mben| i_u * mben as u64 >= rem_u,
            floor,
            scan::ScanOrder::Gain,
            audit::TOP,
            log,
        );
        tls.replay(log);
        let Some(q) = audit::record_cover_round(log, audit::ORDER_GAIN, &top) else {
            select_span.exit(log);
            return RoundOutcome::Done(Err(SolveError::NoSolution));
        };
        let win = top[0];
        audit::charge_masked(log, system, &covered, win);
        chosen.push(q);
        covered.union_with(&masks[q as usize]);
        log.set_selected(q as u64, win.mben as u64, win.cost.value());
        rem = rem.saturating_sub(win.mben);
        if rem == 0 {
            select_span.exit(log);
            return RoundOutcome::Done(Ok(Solution::from_sets(system, chosen)));
        }
    }
    select_span.exit(log);
    RoundOutcome::Done(Err(SolveError::NoSolution))
}

/// The Fig. 2 body over the masked scan engine: same selections and
/// events as [`run`], with the arg-max recounted in parallel.
fn run_parallel<O: Observer + ?Sized>(
    system: &SetSystem,
    k: usize,
    target: usize,
    pool: &ThreadPool,
    obs: &mut O,
) -> Result<Solution, SolveError> {
    obs.guess_started(None);

    let init_span = PhaseSpan::enter(obs, PHASE_INIT);
    let masks = scan::build_masks(pool, system);
    let mut pruned = scan::PrunedScan::new(&masks);
    let mut covered = BitSet::new(system.num_elements());
    obs.benefit_computed(system.num_sets() as u64);
    init_span.exit(obs);

    let tls = ThreadLocalTelemetry::new(pool.threads());
    let mut chosen: Vec<SetId> = Vec::with_capacity(k);
    let mut rem = target;

    let select_span = PhaseSpan::enter(obs, PHASE_SELECT);
    for i in (1..=k).rev() {
        let i_u = i as u64;
        let rem_u = rem as u64;
        // Smallest mben passing the `i·|MBen| >= rem` floor below.
        let floor = rem.div_ceil(i);
        let top = scan::masked_top_pruned(
            pool,
            &tls,
            system,
            &masks,
            &mut pruned,
            &covered,
            |_| true,
            |mben| i_u * mben as u64 >= rem_u,
            floor,
            scan::ScanOrder::Gain,
            audit::TOP,
            obs,
        );
        tls.replay(obs);
        let Some(q) = audit::record_cover_round(obs, audit::ORDER_GAIN, &top) else {
            select_span.exit(obs);
            return Err(SolveError::NoSolution);
        };
        // The recount is against the pre-union mask, so win.mben is
        // exactly the serial `newly`.
        let win = top[0];
        audit::charge_masked(obs, system, &covered, win);
        chosen.push(q);
        covered.union_with(&masks[q as usize]);
        obs.set_selected(q as u64, win.mben as u64, win.cost.value());
        rem = rem.saturating_sub(win.mben);
        if rem == 0 {
            select_span.exit(obs);
            return Ok(Solution::from_sets(system, chosen));
        }
    }
    select_span.exit(obs);
    Err(SolveError::NoSolution)
}

/// The Fig. 2 body, wrapped by [`cwsc_with_target`]'s phase span.
fn run<O: Observer + ?Sized>(
    system: &SetSystem,
    k: usize,
    target: usize,
    obs: &mut O,
) -> Result<Solution, SolveError> {
    // CWSC is a single round: record it so `budget_guesses` is 1, not 0.
    obs.guess_started(None);

    // Fig. 2 lines 03-04: compute MBen of every set.
    let init_span = PhaseSpan::enter(obs, PHASE_INIT);
    let mut state = CoverState::new(system);
    obs.benefit_computed(system.num_sets() as u64);
    init_span.exit(obs);

    let mut chosen: Vec<SetId> = Vec::with_capacity(k);
    let mut rem = target; // line 02

    let select_span = PhaseSpan::enter(obs, PHASE_SELECT);
    for i in (1..=k).rev() {
        // line 06: argmax of MGain over sets with |MBen(s)| >= rem/i,
        // evaluated in exact integer arithmetic.
        let i_u = i as u64;
        let rem_u = rem as u64;
        let top = state.top_gain(audit::TOP, |id| {
            i_u * state.marginal_benefit(id) as u64 >= rem_u
        });
        // line 08 + lines 09, 11-15 (pick_cover selects and updates MBens)
        let Some((q, newly)) = audit::pick_cover(&mut state, obs, audit::ORDER_GAIN, &top) else {
            select_span.exit(obs);
            return Err(SolveError::NoSolution); // line 07
        };
        chosen.push(q);
        rem = rem.saturating_sub(newly);
        if rem == 0 {
            select_span.exit(obs);
            return Ok(Solution::from_sets(system, chosen)); // line 10
        }
    }
    select_span.exit(obs);

    // All k picks made but coverage unmet: each eligible pick covered at
    // least rem/i elements, so this is unreachable; kept as a defensive
    // error rather than a panic.
    Err(SolveError::NoSolution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;

    /// The paper's worked example systems are exercised in the data crate;
    /// here we use small hand-built systems.
    fn system() -> SetSystem {
        let mut b = SetSystem::builder(8);
        b.add_set([0], 1.0) // 0
            .add_set([1], 1.0) // 1
            .add_set([0, 1, 2, 3], 8.0) // 2
            .add_set([4, 5, 6, 7], 4.0) // 3
            .add_universe_set(100.0); // 4
        b.build().unwrap()
    }

    #[test]
    fn picks_high_gain_big_sets_under_size_pressure() {
        let mut stats = Stats::new();
        let sol = cwsc(&system(), 2, 0.75, &mut stats).unwrap();
        // Needs 6 of 8 with 2 sets: singletons are ineligible (6/2 = 3).
        assert_eq!(sol.sets(), &[3, 2]); // gain 1.0 then 0.5
        assert_eq!(sol.covered(), 8);
        assert!(sol.size() <= 2);
        assert_eq!(stats.considered, 5);
    }

    #[test]
    fn eligibility_floor_shrinks_with_coverage() {
        let mut b = SetSystem::builder(4);
        b.add_set([0, 1, 2], 3.0) // gain 1
            .add_set([3], 1.0) // singleton, gain 1
            .add_universe_set(100.0);
        let sys = b.build().unwrap();
        let sol = cwsc(&sys, 2, 1.0, &mut Stats::new()).unwrap();
        // i=2: need ≥2 -> set 0 (universe loses on gain). i=1: need ≥1 -> set 1.
        assert_eq!(sol.sets(), &[0, 1]);
        assert_eq!(sol.covered(), 4);
    }

    #[test]
    fn never_exceeds_k() {
        let sys = system();
        for k in 1..=4 {
            if let Ok(sol) = cwsc(&sys, k, 0.9, &mut Stats::new()) {
                assert!(sol.size() <= k, "k={k} -> {}", sol.size());
                assert!(sol.covered() >= 8 * 9 / 10);
            }
        }
    }

    #[test]
    fn universe_set_guarantees_success() {
        let sol = cwsc(&system(), 1, 1.0, &mut Stats::new()).unwrap();
        assert_eq!(sol.sets(), &[4]); // only the universe set can do it alone
        assert_eq!(sol.covered(), 8);
    }

    #[test]
    fn no_solution_without_universe() {
        let mut b = SetSystem::builder(4);
        b.add_set([0], 1.0).add_set([1], 1.0);
        let sys = b.build().unwrap();
        // k=1 but no single set covers 2 elements
        assert_eq!(
            cwsc(&sys, 1, 0.5, &mut Stats::new()),
            Err(SolveError::NoSolution)
        );
    }

    #[test]
    fn zero_coverage_returns_empty() {
        let sol = cwsc(&system(), 3, 0.0, &mut Stats::new()).unwrap();
        assert_eq!(sol.size(), 0);
        assert_eq!(sol.total_cost().value(), 0.0);
    }

    #[test]
    fn zero_k_is_an_error() {
        assert_eq!(
            cwsc(&system(), 0, 0.5, &mut Stats::new()),
            Err(SolveError::ZeroSizeBound)
        );
    }

    #[test]
    fn explicit_target_variant_matches_fraction() {
        let sys = system();
        let a = cwsc(&sys, 2, 0.75, &mut Stats::new()).unwrap();
        let b = cwsc_with_target(&sys, 2, 6, &mut Stats::new()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn prefers_cheap_among_eligible() {
        let mut b = SetSystem::builder(6);
        b.add_set([0, 1, 2], 9.0) // gain 1/3
            .add_set([3, 4, 5], 3.0) // gain 1
            .add_universe_set(50.0);
        let sys = b.build().unwrap();
        let sol = cwsc(&sys, 1, 0.5, &mut Stats::new()).unwrap();
        assert_eq!(sol.sets(), &[1]);
        assert_eq!(sol.total_cost().value(), 3.0);
    }

    #[test]
    fn single_round_is_recorded() {
        let mut stats = Stats::new();
        let _ = cwsc(&system(), 2, 0.75, &mut stats).unwrap();
        assert_eq!(stats.budget_guesses, 1, "CWSC is one budget round");
        let mut stats = Stats::new();
        let _ = cwsc(&system(), 3, 0.0, &mut stats).unwrap();
        assert_eq!(stats.budget_guesses, 0, "trivial target does no work");
    }

    #[test]
    fn cwsc_on_matches_serial_for_any_thread_count() {
        use crate::parallel::{ThreadPool, Threads};
        use crate::telemetry::MetricsRecorder;
        let mut b = SetSystem::builder(64);
        for i in 0..32u32 {
            let members: Vec<u32> = (0..=(i % 7)).map(|j| (i * 3 + j * 5) % 64).collect();
            b.add_set(members, 1.0 + (i % 9) as f64);
        }
        b.add_universe_set(200.0);
        let sys = b.build().unwrap();
        let mut sm = MetricsRecorder::new();
        let serial = cwsc(&sys, 4, 0.8, &mut sm).unwrap();
        for n in [2usize, 4, 8] {
            let pool = ThreadPool::new(Threads::new(n));
            let mut pm = MetricsRecorder::new();
            let par = cwsc_on(&sys, 4, 0.8, &pool, &mut pm).unwrap();
            assert_eq!(par, serial, "threads {n}");
            assert_eq!(pm.selections, sm.selections);
            assert_eq!(pm.benefits_computed, sm.benefits_computed);
            assert_eq!(pm.guesses, sm.guesses);
            assert_eq!(pm.marginal_benefit_hist, sm.marginal_benefit_hist);
        }
    }

    #[test]
    fn cwsc_on_error_paths_match_serial() {
        use crate::parallel::{ThreadPool, Threads};
        use crate::stats::Stats;
        let mut b = SetSystem::builder(4);
        b.add_set([0], 1.0).add_set([1], 1.0);
        let sys = b.build().unwrap();
        let pool = ThreadPool::new(Threads::new(4));
        assert_eq!(
            cwsc_on(&sys, 1, 0.5, &pool, &mut Stats::new()),
            Err(SolveError::NoSolution)
        );
        assert_eq!(
            cwsc_on(&sys, 0, 0.5, &pool, &mut Stats::new()),
            Err(SolveError::ZeroSizeBound)
        );
        let empty = cwsc_on(&sys, 1, 0.0, &pool, &mut Stats::new()).unwrap();
        assert_eq!(empty.size(), 0);
    }

    #[test]
    fn stops_as_soon_as_covered() {
        let mut b = SetSystem::builder(4);
        b.add_set([0, 1, 2, 3], 4.0)
            .add_set([0], 0.5)
            .add_universe_set(9.0);
        let sys = b.build().unwrap();
        let sol = cwsc(&sys, 3, 1.0, &mut Stats::new()).unwrap();
        assert_eq!(sol.size(), 1, "covered in one pick, must stop");
    }

    mod within {
        use super::*;
        use crate::engine::{Deadline, DegradeReason, SolveOutcome};
        use crate::parallel::{ThreadPool, Threads};
        use crate::solution::verify_certificate;
        use crate::telemetry::MetricsRecorder;

        #[test]
        fn unbounded_deadline_matches_plain_cwsc() {
            let sys = system();
            let serial = cwsc(&sys, 2, 0.75, &mut Stats::new()).unwrap();
            for threads in [1, 4] {
                let pool = ThreadPool::new(Threads::new(threads));
                let out = cwsc_within(
                    &sys,
                    2,
                    0.75,
                    &pool,
                    &Deadline::unbounded(),
                    &mut MetricsRecorder::new(),
                )
                .unwrap();
                assert_eq!(out.expect_complete("unbounded"), serial);
            }
        }

        #[test]
        fn tick_budget_degrades_identically_across_thread_counts() {
            let mut b = SetSystem::builder(12);
            for i in 0..12u32 {
                b.add_set([i], 1.0);
            }
            b.add_universe_set(300.0);
            let sys = b.build().unwrap();
            for budget in [0u64, 1, 2, 4] {
                let run = |threads: usize| {
                    let pool = ThreadPool::new(Threads::new(threads));
                    let deadline = Deadline::unbounded().with_tick_budget(budget);
                    let out =
                        cwsc_within(&sys, 12, 1.0, &pool, &deadline, &mut MetricsRecorder::new())
                            .unwrap();
                    (out, deadline.ticks())
                };
                let (serial, serial_ticks) = run(1);
                assert_eq!((serial.clone(), serial_ticks), run(4), "budget {budget}");
                let SolveOutcome::Degraded(d) = serial else {
                    panic!("budget {budget} cannot cover 12 singleton picks");
                };
                assert_eq!(d.certificate.reason, DegradeReason::TickBudget);
                assert_eq!(d.partial.size(), budget as usize);
                assert!(d.certificate.quotas_exhausted.is_empty());
                let check = verify_certificate(&sys, &d.partial, &d.certificate);
                assert!(check.is_valid(), "{check:?}");
            }
        }

        #[test]
        fn error_paths_match_plain_cwsc() {
            let mut b = SetSystem::builder(4);
            b.add_set([0], 1.0).add_set([1], 1.0);
            let sys = b.build().unwrap();
            let pool = ThreadPool::new(Threads::serial());
            let err = cwsc_within(
                &sys,
                1,
                0.5,
                &pool,
                &Deadline::unbounded(),
                &mut Stats::new(),
            )
            .unwrap_err();
            assert!(matches!(
                err,
                crate::engine::EngineError::Solve(SolveError::NoSolution)
            ));
            let empty = cwsc_within(
                &sys,
                1,
                0.0,
                &pool,
                &Deadline::unbounded(),
                &mut Stats::new(),
            )
            .unwrap();
            assert_eq!(empty.expect_complete("trivial").size(), 0);
        }
    }
}
