//! Exact (optimal) solver via branch and bound, used as the ground truth
//! for Section VI-D's "comparison to optimal solution" and by the tests.
//!
//! The search explores "take / skip" decisions over sets ordered by
//! decreasing benefit, pruning on three bounds:
//! * cost: a partial solution at least as expensive as the incumbent can
//!   never improve it (weights are non-negative);
//! * size: at most `k` takes;
//! * coverage: even taking the `k − |chosen|` largest remaining benefit
//!   sets cannot reach the target.
//!
//! Exponential in the worst case — intended for the small instances the
//! paper solves "using exhaustive search" (Section VI-D).

use crate::bitset::BitSet;
use crate::set_system::{coverage_target, SetId, SetSystem};
use crate::solution::Solution;
use crate::telemetry::{
    pack_k_target, NoopObserver, Observer, PhaseSpan, PruneReason, TraceId, PHASE_TOTAL,
};

/// Finds a minimum-cost sub-collection of at most `k` sets covering at
/// least `⌈coverage_fraction·n⌉` elements, or `None` when infeasible.
pub fn exact_optimal(system: &SetSystem, k: usize, coverage_fraction: f64) -> Option<Solution> {
    exact_optimal_observed(system, k, coverage_fraction, &mut NoopObserver)
}

/// [`exact_optimal`] with an explicit element-count target.
pub fn exact_optimal_with_target(system: &SetSystem, k: usize, target: usize) -> Option<Solution> {
    exact_optimal_with_target_observed(system, k, target, &mut NoopObserver)
}

/// [`exact_optimal`] reporting search effort through an
/// [`Observer`]: `benefit_computed` per take-branch marginal-coverage
/// computation, `set_selected` per tentative take, `candidate_pruned` with
/// [`PruneReason::CostBound`] / [`PruneReason::CoverageBound`] per cut
/// branch, and a `"total"` phase span.
pub fn exact_optimal_observed<O: Observer + ?Sized>(
    system: &SetSystem,
    k: usize,
    coverage_fraction: f64,
    obs: &mut O,
) -> Option<Solution> {
    let target = coverage_target(system.num_elements(), coverage_fraction);
    exact_optimal_with_target_observed(system, k, target, obs)
}

/// [`exact_optimal_observed`] with an explicit element-count target.
pub fn exact_optimal_with_target_observed<O: Observer + ?Sized>(
    system: &SetSystem,
    k: usize,
    target: usize,
    obs: &mut O,
) -> Option<Solution> {
    if target == 0 {
        return Some(Solution::from_sets(system, Vec::new()));
    }
    if k == 0 {
        return None;
    }

    // Order sets by decreasing benefit so the coverage bound is tight early.
    let mut order: Vec<SetId> = (0..system.num_sets() as SetId).collect();
    order.sort_by(|&a, &b| {
        system
            .set(b)
            .benefit()
            .cmp(&system.set(a).benefit())
            .then_with(|| system.cost(a).cmp(&system.cost(b)))
            .then(a.cmp(&b))
    });
    // suffix_benefit[i][r] would be ideal; we use the cheaper bound of the
    // top-r benefits among order[i..], precomputed as a running structure.
    let benefits: Vec<usize> = order.iter().map(|&id| system.set(id).benefit()).collect();
    // top_sum[i] = sum of the k largest benefits in benefits[i..]
    // (loose but monotone upper bound on any r ≤ k picks).
    obs.trace_started(
        TraceId::mint(
            "exact",
            system.num_elements() as u64,
            pack_k_target(k, target),
        ),
        "exact",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let mut search = Search {
        system,
        obs,
        order: &order,
        benefits: &benefits,
        k,
        target,
        best_cost: f64::INFINITY,
        best: None,
        chosen: Vec::new(),
        covered: BitSet::new(system.num_elements()),
        covered_count: 0,
        current_cost: 0.0,
    };
    search.recurse(0);
    let best = search.best.take();
    span.exit(obs);
    Some(Solution::from_sets(system, best?))
}

struct Search<'a, O: Observer + ?Sized> {
    system: &'a SetSystem,
    obs: &'a mut O,
    order: &'a [SetId],
    benefits: &'a [usize],
    k: usize,
    target: usize,
    best_cost: f64,
    best: Option<Vec<SetId>>,
    chosen: Vec<SetId>,
    covered: BitSet,
    covered_count: usize,
    current_cost: f64,
}

impl<O: Observer + ?Sized> Search<'_, O> {
    /// Upper bound on additional coverage using at most `r` more sets from
    /// `order[i..]`: the sum of their `r` largest raw benefits.
    fn coverage_bound(&self, i: usize, r: usize) -> usize {
        // benefits[i..] is sorted descending because `order` is.
        self.benefits[i..].iter().take(r).sum()
    }

    fn recurse(&mut self, i: usize) {
        if self.covered_count >= self.target {
            if self.current_cost < self.best_cost {
                self.best_cost = self.current_cost;
                self.best = Some(self.chosen.clone());
            }
            return; // taking more sets only adds cost
        }
        if i >= self.order.len() || self.chosen.len() >= self.k {
            return;
        }
        if self.current_cost >= self.best_cost {
            self.obs.candidate_pruned(PruneReason::CostBound);
            return; // cost prune
        }
        let remaining_picks = self.k - self.chosen.len();
        if self.covered_count + self.coverage_bound(i, remaining_picks) < self.target {
            self.obs.candidate_pruned(PruneReason::CoverageBound);
            return; // coverage prune
        }

        let id = self.order[i];
        // Branch 1: take `id` (unless it alone busts the cost bound).
        let cost = self.system.cost(id).value();
        if self.current_cost + cost < self.best_cost {
            self.obs.benefit_computed(1);
            let newly: Vec<usize> = self
                .system
                .members(id)
                .iter()
                .map(|&e| e as usize)
                .filter(|&e| !self.covered.contains(e))
                .collect();
            if !newly.is_empty() {
                self.obs.set_selected(id as u64, newly.len() as u64, cost);
                for &e in &newly {
                    self.covered.insert(e);
                }
                self.covered_count += newly.len();
                self.current_cost += cost;
                self.chosen.push(id);
                self.recurse(i + 1);
                self.chosen.pop();
                self.current_cost -= cost;
                self.covered_count -= newly.len();
                for &e in &newly {
                    self.covered.remove(e);
                }
            }
        }
        // Branch 2: skip `id`.
        self.recurse(i + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::cwsc::cwsc;
    use crate::stats::Stats;

    fn system() -> SetSystem {
        let mut b = SetSystem::builder(6);
        b.add_set([0, 1, 2], 5.0)
            .add_set([3, 4, 5], 5.0)
            .add_set([0, 1, 2, 3], 7.0)
            .add_set([4, 5], 1.0)
            .add_universe_set(100.0);
        b.build().unwrap()
    }

    #[test]
    fn finds_cheapest_full_cover() {
        let sol = exact_optimal(&system(), 2, 1.0).unwrap();
        // {2,3}: cost 8 < {0,1}: cost 10 < universe: 100
        assert_eq!(sol.total_cost().value(), 8.0);
        assert_eq!(sol.covered(), 6);
        assert!(sol.size() <= 2);
    }

    #[test]
    fn partial_coverage_can_be_cheaper() {
        let sol = exact_optimal(&system(), 1, 0.3).unwrap();
        // Need 2 of 6: set 3 = {4,5} at cost 1.
        assert_eq!(sol.total_cost().value(), 1.0);
    }

    #[test]
    fn respects_k() {
        // k=1 forces the universe set for full coverage.
        let sol = exact_optimal(&system(), 1, 1.0).unwrap();
        assert_eq!(sol.sets(), &[4]);
        assert_eq!(sol.total_cost().value(), 100.0);
    }

    #[test]
    fn infeasible_returns_none() {
        let mut b = SetSystem::builder(4);
        b.add_set([0], 1.0).add_set([1], 1.0);
        let sys = b.build().unwrap();
        assert!(exact_optimal(&sys, 2, 1.0).is_none());
        assert!(exact_optimal(&sys, 0, 0.1).is_none());
    }

    #[test]
    fn zero_target_is_free() {
        let sol = exact_optimal(&system(), 3, 0.0).unwrap();
        assert_eq!(sol.size(), 0);
        assert_eq!(sol.total_cost().value(), 0.0);
    }

    #[test]
    fn exact_never_worse_than_cwsc() {
        let sys = system();
        for (k, s) in [(1usize, 0.5f64), (2, 0.6), (3, 1.0), (2, 0.9)] {
            let greedy = cwsc(&sys, k, s, &mut Stats::new());
            let opt = exact_optimal(&sys, k, s);
            if let (Ok(g), Some(o)) = (greedy, opt) {
                assert!(
                    o.total_cost() <= g.total_cost(),
                    "k={k} s={s}: opt {} > greedy {}",
                    o.total_cost(),
                    g.total_cost()
                );
            }
        }
    }

    #[test]
    fn observed_variant_reports_search_effort() {
        use crate::telemetry::{MetricsRecorder, PHASE_TOTAL};
        let sys = system();
        let mut m = MetricsRecorder::new();
        let observed = exact_optimal_observed(&sys, 2, 1.0, &mut m).unwrap();
        let plain = exact_optimal(&sys, 2, 1.0).unwrap();
        assert_eq!(observed.total_cost(), plain.total_cost());
        assert!(m.benefits_computed >= 1);
        assert!(m.selections >= 1, "take branches are tentative selections");
        assert!(m.phase_seconds(PHASE_TOTAL).is_some());
    }

    #[test]
    fn handles_duplicate_sets() {
        let mut b = SetSystem::builder(3);
        b.add_set([0, 1, 2], 4.0).add_set([0, 1, 2], 3.0);
        let sys = b.build().unwrap();
        let sol = exact_optimal(&sys, 2, 1.0).unwrap();
        assert_eq!(sol.total_cost().value(), 3.0);
        assert_eq!(sol.size(), 1, "second copy adds cost but no coverage");
    }

    #[test]
    fn tight_k_equals_number_of_needed_sets() {
        let mut b = SetSystem::builder(6);
        for e in 0..6u32 {
            b.add_set([e], 1.0);
        }
        let sys = b.build().unwrap();
        let sol = exact_optimal(&sys, 6, 1.0).unwrap();
        assert_eq!(sol.size(), 6);
        assert_eq!(sol.total_cost().value(), 6.0);
        assert!(exact_optimal(&sys, 5, 1.0).is_none());
    }
}
