//! Masked benefit-scan engine shared by the parallel solver variants.
//!
//! The serial solvers maintain marginal benefits incrementally through
//! [`CoverState`](crate::cover_state::CoverState); workers cannot share
//! that mutable state, so the parallel paths recompute each candidate's
//! marginal benefit on demand as `|Ben(s) \ covered|` — a fused
//! [`BitSet::difference_count`] against per-set membership masks built
//! once per run. Because marginal benefits are monotone non-increasing,
//! "skip when the recount is zero" is observationally identical to the
//! serial deactivation rule, and folding chunk winners in ascending chunk
//! order under the canonical comparators yields the exact serial arg-max
//! for any thread count (DESIGN.md §11).

use crate::bitset::BitSet;
use crate::cover_state::{push_top, Candidate};
use crate::parallel::ThreadPool;
use crate::set_system::{SetId, SetSystem};
use crate::telemetry::{PhaseSpan, ThreadLocalTelemetry, PHASE_SCAN};
use std::cmp::Ordering;

/// Builds one membership [`BitSet`] per set, in id order, on the pool.
pub fn build_masks(pool: &ThreadPool, system: &SetSystem) -> Vec<BitSet> {
    let n = system.num_elements();
    let ids: Vec<SetId> = (0..system.num_sets() as SetId).collect();
    pool.par_map(&ids, |&id| {
        let mut mask = BitSet::new(n);
        for &e in system.members(id) {
            mask.insert(e as usize);
        }
        mask
    })
}

/// Parallel arg-max over all sets: recounts each candidate's marginal
/// benefit against `covered` and keeps the best under `order`, chunked
/// across the pool with the serial tie-breaking contract.
///
/// `filter` is the structural pre-filter (level membership); `eligible`
/// gates on the recounted marginal benefit (CWSC's `i·|MBen| ≥ rem`
/// floor). Zero-benefit sets are always skipped. Each chunk records a
/// [`PHASE_SCAN`] span into its `tls` shard; the caller replays the
/// shards after the scan so per-worker spans nest under the open round
/// span. Returns `Greater`-preferred winner or `None` when no candidate
/// passes.
#[allow(clippy::too_many_arguments)]
pub fn masked_argmax<F, E, C>(
    pool: &ThreadPool,
    tls: &ThreadLocalTelemetry,
    system: &SetSystem,
    masks: &[BitSet],
    covered: &BitSet,
    filter: F,
    eligible: E,
    order: C,
) -> Option<Candidate>
where
    F: Fn(SetId) -> bool + Sync,
    E: Fn(usize) -> bool + Sync,
    C: Fn(Candidate, Candidate) -> Ordering + Sync,
{
    pool.par_chunks_reduce(
        masks.len(),
        |chunk, range| {
            let mut shard = tls.shard(chunk);
            let span = PhaseSpan::enter(&mut *shard, PHASE_SCAN);
            let mut best: Option<Candidate> = None;
            for id in range {
                let id = id as SetId;
                if !filter(id) {
                    continue;
                }
                let mben = masks[id as usize].difference_count(covered);
                if mben == 0 || !eligible(mben) {
                    continue;
                }
                let cand = Candidate {
                    id,
                    mben,
                    cost: system.cost(id),
                };
                best = Some(match best {
                    Some(b) if order(cand, b) != Ordering::Greater => b,
                    _ => cand,
                });
            }
            span.exit(&mut *shard);
            best
        },
        |a, b| {
            if order(b, a) == Ordering::Greater {
                b
            } else {
                a
            }
        },
    )
}

/// Parallel top-`cap` scan: like [`masked_argmax`] but returns the best
/// `cap` candidates best-first — the winner plus the audit ledger's
/// runners-up. Each chunk keeps its own sorted top list; chunk lists fold
/// in ascending chunk order through [`push_top`], and because the
/// canonical comparators are total orders the merged list is exactly the
/// serial scan's top-`cap` prefix for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn masked_top<F, E, C>(
    pool: &ThreadPool,
    tls: &ThreadLocalTelemetry,
    system: &SetSystem,
    masks: &[BitSet],
    covered: &BitSet,
    filter: F,
    eligible: E,
    order: C,
    cap: usize,
) -> Vec<Candidate>
where
    F: Fn(SetId) -> bool + Sync,
    E: Fn(usize) -> bool + Sync,
    C: Fn(Candidate, Candidate) -> Ordering + Sync,
{
    pool.par_chunks_reduce(
        masks.len(),
        |chunk, range| {
            let mut shard = tls.shard(chunk);
            let span = PhaseSpan::enter(&mut *shard, PHASE_SCAN);
            let mut top: Vec<Candidate> = Vec::with_capacity(cap);
            for id in range {
                let id = id as SetId;
                if !filter(id) {
                    continue;
                }
                let mben = masks[id as usize].difference_count(covered);
                if mben == 0 || !eligible(mben) {
                    continue;
                }
                let cand = Candidate {
                    id,
                    mben,
                    cost: system.cost(id),
                };
                push_top(&mut top, cand, cap, &order);
            }
            span.exit(&mut *shard);
            Some(top)
        },
        |mut a, b| {
            for c in b {
                push_top(&mut a, c, cap, &order);
            }
            a
        },
    )
    .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover_state::{benefit_order, gain_order, CoverState};
    use crate::parallel::Threads;

    fn system() -> SetSystem {
        let mut b = SetSystem::builder(16);
        b.add_set([0, 1, 2, 3], 4.0)
            .add_set([2, 3, 4, 5], 4.0)
            .add_set([6, 7], 1.0)
            .add_set([8, 9, 10, 11, 12], 9.0)
            .add_set([13, 14, 15], 2.0)
            .add_universe_set(40.0);
        b.build().unwrap()
    }

    #[test]
    fn masks_match_memberships() {
        let sys = system();
        let pool = ThreadPool::new(Threads::new(4));
        let masks = build_masks(&pool, &sys);
        assert_eq!(masks.len(), sys.num_sets());
        for (id, set) in sys.iter() {
            assert_eq!(masks[id as usize].count_ones(), set.benefit());
            for &e in set.members() {
                assert!(masks[id as usize].contains(e as usize));
            }
        }
    }

    #[test]
    fn masked_argmax_matches_cover_state_scans() {
        let sys = system();
        let pool = ThreadPool::new(Threads::new(4));
        let masks = build_masks(&pool, &sys);
        let tls = ThreadLocalTelemetry::new(pool.threads());

        let mut state = CoverState::new(&sys);
        let mut covered = BitSet::new(sys.num_elements());
        // Walk a few greedy selections, comparing winners at every step.
        for _ in 0..4 {
            let serial_b = state.argmax_benefit(|_| true);
            let par_b = masked_argmax(
                &pool,
                &tls,
                &sys,
                &masks,
                &covered,
                |_| true,
                |_| true,
                benefit_order,
            );
            assert_eq!(par_b.map(|c| c.id), serial_b);
            let serial_g = state.argmax_gain(|_| true);
            let par_g = masked_argmax(
                &pool,
                &tls,
                &sys,
                &masks,
                &covered,
                |_| true,
                |_| true,
                gain_order,
            );
            assert_eq!(par_g.map(|c| c.id), serial_g);
            let Some(q) = serial_b else { break };
            let newly = state.select(q);
            let c = par_b.unwrap();
            assert_eq!(c.mben, newly, "recount equals incremental mben");
            covered.union_with(&masks[q as usize]);
        }
    }

    #[test]
    fn masked_top_matches_serial_top_for_any_thread_count() {
        let sys = system();
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(Threads::new(threads));
            let masks = build_masks(&pool, &sys);
            let tls = ThreadLocalTelemetry::new(pool.threads());
            let mut state = CoverState::new(&sys);
            let mut covered = BitSet::new(sys.num_elements());
            loop {
                let serial_b = state.top_benefit(4, |_| true);
                let par_b = masked_top(
                    &pool,
                    &tls,
                    &sys,
                    &masks,
                    &covered,
                    |_| true,
                    |_| true,
                    benefit_order,
                    4,
                );
                assert_eq!(par_b, serial_b, "benefit top @ {threads} threads");
                let serial_g = state.top_gain(4, |_| true);
                let par_g = masked_top(
                    &pool,
                    &tls,
                    &sys,
                    &masks,
                    &covered,
                    |_| true,
                    |_| true,
                    gain_order,
                    4,
                );
                assert_eq!(par_g, serial_g, "gain top @ {threads} threads");
                let Some(&win) = serial_g.first() else { break };
                state.select(win.id);
                covered.union_with(&masks[win.id as usize]);
            }
        }
    }

    #[test]
    fn scan_spans_land_in_shards() {
        let sys = system();
        let pool = ThreadPool::new(Threads::new(2));
        let masks = build_masks(&pool, &sys);
        let tls = ThreadLocalTelemetry::new(pool.threads());
        let covered = BitSet::new(sys.num_elements());
        let _ = masked_argmax(
            &pool,
            &tls,
            &sys,
            &masks,
            &covered,
            |_| true,
            |_| true,
            benefit_order,
        );
        let mut m = crate::telemetry::MetricsRecorder::new();
        tls.replay(&mut m);
        let scan = m.phases().iter().find(|p| p.name == PHASE_SCAN).unwrap();
        assert!(scan.count >= 1 && scan.count <= 2, "{}", scan.count);
    }
}
