//! Masked benefit-scan engine shared by the parallel solver variants.
//!
//! The serial solvers maintain marginal benefits incrementally through
//! [`CoverState`](crate::cover_state::CoverState); workers cannot share
//! that mutable state, so the parallel paths recompute each candidate's
//! marginal benefit on demand as `|Ben(s) \ covered|` — a fused
//! [`BitSet::difference_count`] against per-set membership masks built
//! once per run. Because marginal benefits are monotone non-increasing,
//! "skip when the recount is zero" is observationally identical to the
//! serial deactivation rule, and folding chunk winners in ascending chunk
//! order under the canonical comparators yields the exact serial arg-max
//! for any thread count (DESIGN.md §11).

use crate::bitset::{BitSet, BlockSummary, LimitedCount};
use crate::cover_state::{benefit_order, gain_order, push_top, Candidate};
use crate::parallel::{prune_from_env, ThreadPool};
use crate::set_system::{SetId, SetSystem};
use crate::telemetry::{Observer, PhaseSpan, ThreadLocalTelemetry, PHASE_SCAN, PHASE_SCAN_PRUNE};
use std::cmp::Ordering;

/// Builds one membership [`BitSet`] per set, in id order, on the pool.
pub fn build_masks(pool: &ThreadPool, system: &SetSystem) -> Vec<BitSet> {
    let n = system.num_elements();
    let ids: Vec<SetId> = (0..system.num_sets() as SetId).collect();
    pool.par_map(&ids, |&id| {
        let mut mask = BitSet::new(n);
        // `insert_hot`: member ids were validated against the universe by
        // the SetSystem builder (debug builds still range-check).
        for &e in system.members(id) {
            mask.insert_hot(e as usize);
        }
        mask
    })
}

/// Parallel arg-max over all sets: recounts each candidate's marginal
/// benefit against `covered` and keeps the best under `order`, chunked
/// across the pool with the serial tie-breaking contract.
///
/// `filter` is the structural pre-filter (level membership); `eligible`
/// gates on the recounted marginal benefit (CWSC's `i·|MBen| ≥ rem`
/// floor). Zero-benefit sets are always skipped. Each chunk records a
/// [`PHASE_SCAN`] span into its `tls` shard; the caller replays the
/// shards after the scan so per-worker spans nest under the open round
/// span. Returns `Greater`-preferred winner or `None` when no candidate
/// passes.
#[allow(clippy::too_many_arguments)]
pub fn masked_argmax<F, E, C>(
    pool: &ThreadPool,
    tls: &ThreadLocalTelemetry,
    system: &SetSystem,
    masks: &[BitSet],
    covered: &BitSet,
    filter: F,
    eligible: E,
    order: C,
) -> Option<Candidate>
where
    F: Fn(SetId) -> bool + Sync,
    E: Fn(usize) -> bool + Sync,
    C: Fn(Candidate, Candidate) -> Ordering + Sync,
{
    pool.par_chunks_reduce(
        masks.len(),
        |chunk, range| {
            let mut shard = tls.shard(chunk);
            let span = PhaseSpan::enter(&mut *shard, PHASE_SCAN);
            let mut best: Option<Candidate> = None;
            for id in range {
                let id = id as SetId;
                if !filter(id) {
                    continue;
                }
                let mben = masks[id as usize].difference_count(covered);
                if mben == 0 || !eligible(mben) {
                    continue;
                }
                let cand = Candidate {
                    id,
                    mben,
                    cost: system.cost(id),
                };
                best = Some(match best {
                    Some(b) if order(cand, b) != Ordering::Greater => b,
                    _ => cand,
                });
            }
            span.exit(&mut *shard);
            best
        },
        |a, b| {
            if order(b, a) == Ordering::Greater {
                b
            } else {
                a
            }
        },
    )
}

/// Parallel top-`cap` scan: like [`masked_argmax`] but returns the best
/// `cap` candidates best-first — the winner plus the audit ledger's
/// runners-up. Each chunk keeps its own sorted top list; chunk lists fold
/// in ascending chunk order through [`push_top`], and because the
/// canonical comparators are total orders the merged list is exactly the
/// serial scan's top-`cap` prefix for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn masked_top<F, E, C>(
    pool: &ThreadPool,
    tls: &ThreadLocalTelemetry,
    system: &SetSystem,
    masks: &[BitSet],
    covered: &BitSet,
    filter: F,
    eligible: E,
    order: C,
    cap: usize,
) -> Vec<Candidate>
where
    F: Fn(SetId) -> bool + Sync,
    E: Fn(usize) -> bool + Sync,
    C: Fn(Candidate, Candidate) -> Ordering + Sync,
{
    pool.par_chunks_reduce(
        masks.len(),
        |chunk, range| {
            let mut shard = tls.shard(chunk);
            let span = PhaseSpan::enter(&mut *shard, PHASE_SCAN);
            let mut top: Vec<Candidate> = Vec::with_capacity(cap);
            for id in range {
                let id = id as SetId;
                if !filter(id) {
                    continue;
                }
                let mben = masks[id as usize].difference_count(covered);
                if mben == 0 || !eligible(mben) {
                    continue;
                }
                let cand = Candidate {
                    id,
                    mben,
                    cost: system.cost(id),
                };
                push_top(&mut top, cand, cap, &order);
            }
            span.exit(&mut *shard);
            Some(top)
        },
        |mut a, b| {
            for c in b {
                push_top(&mut a, c, cap, &order);
            }
            a
        },
    )
    .unwrap_or_default()
}

/// Which canonical comparator a pruned scan ranks candidates under.
///
/// The pruned scan needs more than an opaque comparator closure: to skip a
/// candidate it must *invert* the order — "what marginal benefit would this
/// candidate need to displace the current worst top-list member?" — so the
/// two canonical orders are enumerated here together with their bound
/// predicates (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOrder {
    /// [`benefit_order`]: marginal benefit desc, cost asc, id asc.
    Benefit,
    /// [`gain_order`]: cross-multiplied gain desc, then benefit order.
    Gain,
}

impl ScanOrder {
    /// The comparator this order stands for.
    #[inline]
    pub fn cmp(self, a: Candidate, b: Candidate) -> Ordering {
        match self {
            ScanOrder::Benefit => benefit_order(a, b),
            ScanOrder::Gain => gain_order(a, b),
        }
    }

    /// The smallest marginal benefit at which a candidate with `cost`
    /// could still displace `worst` from a full top list, or `None` when
    /// even `bound` (an upper bound on the candidate's true benefit)
    /// cannot — prune outright.
    ///
    /// Soundness: a candidate whose *primary* key (marginal benefit, or
    /// the exact cross-multiplied f64 gain that [`gain_order`] itself
    /// computes) is strictly below `worst`'s compares `Less` before the
    /// cost/id tie-break levels are ever consulted, so no tie-break can
    /// resurrect a candidate below the returned threshold.
    fn entry_threshold(
        self,
        bound: usize,
        cost: crate::cost::Cost,
        worst: Candidate,
    ) -> Option<usize> {
        match self {
            ScanOrder::Benefit => (bound >= worst.mben).then_some(worst.mben),
            ScanOrder::Gain => {
                let wc = worst.cost.value();
                let wm = worst.mben as f64;
                let c = cost.value();
                // Strictly worse in the primary key exactly when
                // `m·wc < wm·c` — the comparison `gain_order` performs.
                // Monotone non-increasing in `m` (f64 multiply by wc ≥ 0).
                let below = |m: usize| (m as f64) * wc < wm * c;
                if below(bound) {
                    return None;
                }
                // Minimal t with !below(t), found from a ceil-division
                // estimate and corrected under the exact f64 predicate;
                // `bound` satisfies !below, so both fix-ups terminate.
                let mut t = if wc > 0.0 {
                    ((wm * c / wc).ceil().max(0.0) as usize).min(bound)
                } else {
                    bound
                };
                while below(t) {
                    t += 1;
                }
                while t > 0 && !below(t - 1) {
                    t -= 1;
                }
                Some(t)
            }
        }
    }
}

/// Per-scan advisory counts, merged across chunks and emitted once by the
/// caller — never from inside a telemetry shard, so the pruned scan adds
/// no replayed events and the audit stream stays byte-identical.
#[derive(Debug, Default, Clone, Copy)]
struct PruneTally {
    pruned: u64,
    refreshed: u64,
    inconclusive: u64,
}

impl PruneTally {
    fn add(&mut self, other: PruneTally) {
        self.pruned += other.pruned;
        self.refreshed += other.refreshed;
        self.inconclusive += other.inconclusive;
    }

    fn emit<O: Observer + ?Sized>(self, obs: &mut O) {
        if self.pruned > 0 {
            obs.scan_pruned(self.pruned);
        }
        if self.refreshed > 0 {
            obs.bound_refreshed(self.refreshed);
        }
        if self.inconclusive > 0 {
            obs.sketch_inconclusive(self.inconclusive);
        }
    }
}

/// Tier-A state of the sketch-pruned benefit scan: one stale upper bound
/// and one [`BlockSummary`] per set.
///
/// Invariants (DESIGN.md §15):
/// * `bounds[id] >= |Ben(id) \ covered|` at all times, because marginal
///   benefits are monotone non-increasing while `covered` only grows and
///   every refresh stores an exact (or provably-not-smaller) value.
/// * Summaries describe the immutable membership masks, so they are built
///   once and never refreshed.
///
/// Bounds are advisory: *which* candidates get exact counts may differ
/// across thread counts (chunk-local champions differ), but the returned
/// top lists are bit-identical to the exact scan's for any chunking.
#[derive(Debug)]
pub struct PrunedScan {
    enabled: bool,
    bounds: Vec<usize>,
    summaries: Vec<BlockSummary>,
}

impl PrunedScan {
    /// State for `masks`, honoring the `SCWSC_PRUNE` environment gate.
    pub fn new(masks: &[BitSet]) -> PrunedScan {
        PrunedScan::with_enabled(masks, prune_from_env())
    }

    /// State with an explicit enable flag (tests and A/B baselines).
    pub fn with_enabled(masks: &[BitSet], enabled: bool) -> PrunedScan {
        if !enabled {
            return PrunedScan {
                enabled,
                bounds: Vec::new(),
                summaries: Vec::new(),
            };
        }
        PrunedScan {
            enabled,
            bounds: masks.iter().map(BitSet::count_ones).collect(),
            summaries: masks.iter().map(BlockSummary::of).collect(),
        }
    }

    /// Whether pruning is active (otherwise every scan falls back to the
    /// exact unpruned path).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Resets every bound to `|Ben(s)|`. Call whenever `covered` restarts
    /// from empty (a new CMC budget guess): bounds are only valid while
    /// coverage grows monotonically.
    pub fn reset(&mut self, masks: &[BitSet]) {
        if !self.enabled {
            return;
        }
        self.bounds.clear();
        self.bounds.extend(masks.iter().map(BitSet::count_ones));
    }

    /// Current upper bound on `id`'s marginal benefit (enabled scans only).
    #[inline]
    pub fn bound(&self, id: SetId) -> usize {
        self.bounds[id as usize]
    }
}

/// [`masked_top`] behind the two-tier pruned scan.
///
/// Identical return value to the exact scan — every skipped candidate is
/// *proved* unable to enter its chunk's top list by a stale bound, the
/// block-summary sketch, or an early-exited kernel — but far fewer exact
/// masked counts. `floor` is the smallest marginal benefit that satisfies
/// `eligible` (0 when `eligible` is unconditional); `eligible` itself must
/// be monotone (`!eligible(m)` implies `!eligible(m')` for `m' <= m`),
/// which both canonical eligibility rules (none, and CWSC's
/// `i·|MBen| >= rem` floor) satisfy. Advisory prune counters are emitted
/// on `obs` once, after the chunk merge.
#[allow(clippy::too_many_arguments)]
pub fn masked_top_pruned<F, E, O>(
    pool: &ThreadPool,
    tls: &ThreadLocalTelemetry,
    system: &SetSystem,
    masks: &[BitSet],
    scan: &mut PrunedScan,
    covered: &BitSet,
    filter: F,
    eligible: E,
    floor: usize,
    order: ScanOrder,
    cap: usize,
    obs: &mut O,
) -> Vec<Candidate>
where
    F: Fn(SetId) -> bool + Sync,
    E: Fn(usize) -> bool + Sync,
    O: Observer + ?Sized,
{
    if !scan.enabled {
        return masked_top(
            pool,
            tls,
            system,
            masks,
            covered,
            filter,
            eligible,
            |a, b| order.cmp(a, b),
            cap,
        );
    }
    if cap == 0 {
        return Vec::new();
    }
    let bounds: &[usize] = &scan.bounds;
    let summaries: &[BlockSummary] = &scan.summaries;
    type ChunkOut = (Vec<Candidate>, Vec<(SetId, usize)>, PruneTally);
    let result: Option<ChunkOut> = pool.par_chunks_reduce(
        masks.len(),
        |chunk, range| {
            let mut shard = tls.shard(chunk);
            let span = PhaseSpan::enter(&mut *shard, PHASE_SCAN_PRUNE);
            let mut top: Vec<Candidate> = Vec::with_capacity(cap);
            let mut updates: Vec<(SetId, usize)> = Vec::new();
            let mut tally = PruneTally::default();
            for id in range {
                let id = id as SetId;
                if !filter(id) {
                    continue;
                }
                let bound = bounds[id as usize];
                if bound == 0 || !eligible(bound) {
                    // The exact scan would count `mben <= bound` and then
                    // skip: zero stays zero and `eligible` is monotone.
                    tally.pruned += 1;
                    continue;
                }
                let cost = system.cost(id);
                let mut threshold = floor;
                if top.len() == cap {
                    let worst = *top.last().expect("cap > 0, list full");
                    match order.entry_threshold(bound, cost, worst) {
                        None => {
                            tally.pruned += 1;
                            continue;
                        }
                        Some(t) => threshold = threshold.max(t),
                    }
                }
                let counted = masks[id as usize].difference_count_limited(
                    covered,
                    &summaries[id as usize],
                    threshold,
                );
                match counted {
                    LimitedCount::Exact(mben) => {
                        updates.push((id, mben));
                        tally.refreshed += 1;
                        if threshold > 0 {
                            tally.inconclusive += 1;
                        }
                        if mben == 0 || !eligible(mben) {
                            continue;
                        }
                        push_top(&mut top, Candidate { id, mben, cost }, cap, |a, b| {
                            order.cmp(a, b)
                        });
                    }
                    LimitedCount::Short { nonzero } => {
                        // Provably below the displacement threshold: the
                        // exact scan would have counted this candidate and
                        // left the top list unchanged. Keep what the probe
                        // proved as the new (tighter) bound. `nonzero`
                        // implies threshold >= 2, so the subtraction holds.
                        updates.push((id, if nonzero { threshold - 1 } else { 0 }));
                        tally.pruned += 1;
                    }
                }
            }
            span.exit(&mut *shard);
            Some((top, updates, tally))
        },
        |(mut top, mut updates, mut tally), (top_b, updates_b, tally_b)| {
            for c in top_b {
                push_top(&mut top, c, cap, |a, b| order.cmp(a, b));
            }
            updates.extend(updates_b);
            tally.add(tally_b);
            (top, updates, tally)
        },
    );
    let Some((top, updates, tally)) = result else {
        return Vec::new();
    };
    for (id, bound) in updates {
        debug_assert!(
            bound <= scan.bounds[id as usize],
            "bounds must be monotone non-increasing (set {id})"
        );
        scan.bounds[id as usize] = bound;
    }
    tally.emit(obs);
    top
}

/// [`masked_argmax`] behind the pruned scan: the `cap == 1` special case
/// of [`masked_top_pruned`] (the canonical comparators are total orders,
/// so the single-slot top list and the replace-when-`Greater` fold pick
/// the same winner).
#[allow(clippy::too_many_arguments)]
pub fn masked_argmax_pruned<F, E, O>(
    pool: &ThreadPool,
    tls: &ThreadLocalTelemetry,
    system: &SetSystem,
    masks: &[BitSet],
    scan: &mut PrunedScan,
    covered: &BitSet,
    filter: F,
    eligible: E,
    floor: usize,
    order: ScanOrder,
    obs: &mut O,
) -> Option<Candidate>
where
    F: Fn(SetId) -> bool + Sync,
    E: Fn(usize) -> bool + Sync,
    O: Observer + ?Sized,
{
    if !scan.enabled {
        return masked_argmax(
            pool,
            tls,
            system,
            masks,
            covered,
            filter,
            eligible,
            |a, b| order.cmp(a, b),
        );
    }
    masked_top_pruned(
        pool, tls, system, masks, scan, covered, filter, eligible, floor, order, 1, obs,
    )
    .into_iter()
    .next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover_state::{benefit_order, gain_order, CoverState};
    use crate::parallel::Threads;

    fn system() -> SetSystem {
        let mut b = SetSystem::builder(16);
        b.add_set([0, 1, 2, 3], 4.0)
            .add_set([2, 3, 4, 5], 4.0)
            .add_set([6, 7], 1.0)
            .add_set([8, 9, 10, 11, 12], 9.0)
            .add_set([13, 14, 15], 2.0)
            .add_universe_set(40.0);
        b.build().unwrap()
    }

    #[test]
    fn masks_match_memberships() {
        let sys = system();
        let pool = ThreadPool::new(Threads::new(4));
        let masks = build_masks(&pool, &sys);
        assert_eq!(masks.len(), sys.num_sets());
        for (id, set) in sys.iter() {
            assert_eq!(masks[id as usize].count_ones(), set.benefit());
            for &e in set.members() {
                assert!(masks[id as usize].contains(e as usize));
            }
        }
    }

    #[test]
    fn masked_argmax_matches_cover_state_scans() {
        let sys = system();
        let pool = ThreadPool::new(Threads::new(4));
        let masks = build_masks(&pool, &sys);
        let tls = ThreadLocalTelemetry::new(pool.threads());

        let mut state = CoverState::new(&sys);
        let mut covered = BitSet::new(sys.num_elements());
        // Walk a few greedy selections, comparing winners at every step.
        for _ in 0..4 {
            let serial_b = state.argmax_benefit(|_| true);
            let par_b = masked_argmax(
                &pool,
                &tls,
                &sys,
                &masks,
                &covered,
                |_| true,
                |_| true,
                benefit_order,
            );
            assert_eq!(par_b.map(|c| c.id), serial_b);
            let serial_g = state.argmax_gain(|_| true);
            let par_g = masked_argmax(
                &pool,
                &tls,
                &sys,
                &masks,
                &covered,
                |_| true,
                |_| true,
                gain_order,
            );
            assert_eq!(par_g.map(|c| c.id), serial_g);
            let Some(q) = serial_b else { break };
            let newly = state.select(q);
            let c = par_b.unwrap();
            assert_eq!(c.mben, newly, "recount equals incremental mben");
            covered.union_with(&masks[q as usize]);
        }
    }

    #[test]
    fn masked_top_matches_serial_top_for_any_thread_count() {
        let sys = system();
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(Threads::new(threads));
            let masks = build_masks(&pool, &sys);
            let tls = ThreadLocalTelemetry::new(pool.threads());
            let mut state = CoverState::new(&sys);
            let mut covered = BitSet::new(sys.num_elements());
            loop {
                let serial_b = state.top_benefit(4, |_| true);
                let par_b = masked_top(
                    &pool,
                    &tls,
                    &sys,
                    &masks,
                    &covered,
                    |_| true,
                    |_| true,
                    benefit_order,
                    4,
                );
                assert_eq!(par_b, serial_b, "benefit top @ {threads} threads");
                let serial_g = state.top_gain(4, |_| true);
                let par_g = masked_top(
                    &pool,
                    &tls,
                    &sys,
                    &masks,
                    &covered,
                    |_| true,
                    |_| true,
                    gain_order,
                    4,
                );
                assert_eq!(par_g, serial_g, "gain top @ {threads} threads");
                let Some(&win) = serial_g.first() else { break };
                state.select(win.id);
                covered.union_with(&masks[win.id as usize]);
            }
        }
    }

    /// Deterministic LCG so pruned-vs-exact checks run on irregular sets.
    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    fn random_system(seed: u64, sets: usize, universe: usize) -> SetSystem {
        let mut s = seed;
        let mut b = SetSystem::builder(universe);
        for _ in 0..sets {
            let len = 1 + (lcg(&mut s) as usize % (universe / 4).max(1));
            let members: Vec<u32> = (0..len)
                .map(|_| (lcg(&mut s) % universe as u64) as u32)
                .collect();
            let cost = 0.5 + (lcg(&mut s) % 100) as f64 / 10.0;
            b.add_set(members, cost);
        }
        b.add_universe_set(1.0e4);
        b.build().unwrap()
    }

    #[test]
    fn pruned_top_matches_exact_across_threads_and_orders() {
        let sys = random_system(0x5eed, 48, 384);
        for threads in [1usize, 2, 4] {
            for order in [ScanOrder::Benefit, ScanOrder::Gain] {
                let pool = ThreadPool::new(Threads::new(threads));
                let masks = build_masks(&pool, &sys);
                let tls = ThreadLocalTelemetry::new(pool.threads());
                let mut scan = PrunedScan::with_enabled(&masks, true);
                let mut covered = BitSet::new(sys.num_elements());
                let mut m = crate::telemetry::MetricsRecorder::new();
                loop {
                    let exact = masked_top(
                        &pool,
                        &tls,
                        &sys,
                        &masks,
                        &covered,
                        |_| true,
                        |_| true,
                        |a, b| order.cmp(a, b),
                        4,
                    );
                    let pruned = masked_top_pruned(
                        &pool,
                        &tls,
                        &sys,
                        &masks,
                        &mut scan,
                        &covered,
                        |_| true,
                        |_| true,
                        0,
                        order,
                        4,
                        &mut m,
                    );
                    assert_eq!(pruned, exact, "{order:?} top @ {threads} threads");
                    let Some(&win) = exact.first() else { break };
                    covered.union_with(&masks[win.id as usize]);
                }
                assert!(
                    m.scan_candidates_pruned > 0,
                    "pruning fired ({order:?}, {threads} threads)"
                );
                assert!(m.scan_bounds_refreshed > 0);
            }
        }
    }

    #[test]
    fn pruned_argmax_matches_exact_under_floor_and_filter() {
        let sys = random_system(0xf100d, 40, 256);
        let pool = ThreadPool::new(Threads::new(3));
        let masks = build_masks(&pool, &sys);
        let tls = ThreadLocalTelemetry::new(pool.threads());
        let mut scan = PrunedScan::with_enabled(&masks, true);
        let mut covered = BitSet::new(sys.num_elements());
        let mut m = crate::telemetry::MetricsRecorder::new();
        let filter = |id: SetId| id % 3 != 1;
        // CWSC-style monotone floor: candidates below `floor` are ineligible.
        for floor in [1usize, 3, 9, 27] {
            let exact = masked_argmax(
                &pool,
                &tls,
                &sys,
                &masks,
                &covered,
                filter,
                |m| m >= floor,
                gain_order,
            );
            let pruned = masked_argmax_pruned(
                &pool,
                &tls,
                &sys,
                &masks,
                &mut scan,
                &covered,
                filter,
                |m| m >= floor,
                floor,
                ScanOrder::Gain,
                &mut m,
            );
            assert_eq!(pruned, exact, "floor {floor}");
            if let Some(win) = exact {
                covered.union_with(&masks[win.id as usize]);
            }
        }
    }

    #[test]
    fn disabled_pruned_scan_delegates_to_exact_and_stays_silent() {
        let sys = random_system(0xd15ab1ed, 24, 128);
        let pool = ThreadPool::new(Threads::new(2));
        let masks = build_masks(&pool, &sys);
        let tls = ThreadLocalTelemetry::new(pool.threads());
        let mut scan = PrunedScan::with_enabled(&masks, false);
        assert!(!scan.is_enabled());
        let covered = BitSet::new(sys.num_elements());
        let mut m = crate::telemetry::MetricsRecorder::new();
        let exact = masked_top(
            &pool,
            &tls,
            &sys,
            &masks,
            &covered,
            |_| true,
            |_| true,
            benefit_order,
            4,
        );
        let via_scan = masked_top_pruned(
            &pool,
            &tls,
            &sys,
            &masks,
            &mut scan,
            &covered,
            |_| true,
            |_| true,
            0,
            ScanOrder::Benefit,
            4,
            &mut m,
        );
        assert_eq!(via_scan, exact);
        assert_eq!(m.scan_candidates_pruned, 0);
        assert_eq!(m.scan_bounds_refreshed, 0);
        assert_eq!(m.scan_sketch_inconclusive, 0);
        // Disabled scans record the plain scan phase, not the pruned one.
        tls.replay(&mut m);
        assert!(m.phases().iter().all(|p| p.name != PHASE_SCAN_PRUNE));
    }

    #[test]
    fn reset_restores_initial_bounds_after_tightening() {
        let sys = random_system(0x0b5e55ed, 16, 96);
        let pool = ThreadPool::new(Threads::new(2));
        let masks = build_masks(&pool, &sys);
        let tls = ThreadLocalTelemetry::new(pool.threads());
        let mut scan = PrunedScan::with_enabled(&masks, true);
        let initial: Vec<usize> = (0..masks.len()).map(|i| scan.bound(i as SetId)).collect();
        let mut covered = BitSet::new(sys.num_elements());
        let mut m = crate::telemetry::MetricsRecorder::new();
        for _ in 0..3 {
            let win = masked_argmax_pruned(
                &pool,
                &tls,
                &sys,
                &masks,
                &mut scan,
                &covered,
                |_| true,
                |_| true,
                0,
                ScanOrder::Benefit,
                &mut m,
            );
            let Some(win) = win else { break };
            covered.union_with(&masks[win.id as usize]);
        }
        assert!(
            (0..masks.len()).any(|i| scan.bound(i as SetId) < initial[i]),
            "some bound tightened"
        );
        scan.reset(&masks);
        let after: Vec<usize> = (0..masks.len()).map(|i| scan.bound(i as SetId)).collect();
        assert_eq!(after, initial);
    }

    #[test]
    fn scan_spans_land_in_shards() {
        let sys = system();
        let pool = ThreadPool::new(Threads::new(2));
        let masks = build_masks(&pool, &sys);
        let tls = ThreadLocalTelemetry::new(pool.threads());
        let covered = BitSet::new(sys.num_elements());
        let _ = masked_argmax(
            &pool,
            &tls,
            &sys,
            &masks,
            &covered,
            |_| true,
            |_| true,
            benefit_order,
        );
        let mut m = crate::telemetry::MetricsRecorder::new();
        tls.replay(&mut m);
        let scan = m.phases().iter().find(|p| p.name == PHASE_SCAN).unwrap();
        assert!(scan.count >= 1 && scan.count <= 2, "{}", scan.count);
    }
}
