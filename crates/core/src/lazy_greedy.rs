//! Lazy-evaluation max-heap for submodular greedy selection.
//!
//! Marginal benefit is non-increasing as the partial solution grows
//! (submodularity of coverage), so a heap entry holding a *stale* marginal
//! benefit is still an upper bound on the true one. Popping the top,
//! recomputing its value, and re-inserting when stale therefore yields the
//! exact argmax while touching far fewer candidates than a full scan — the
//! classic "lazy greedy" accelerator of Minoux. [`CoverState`]'s eager scan
//! (`argmax_benefit`) is the faithful-pseudocode path; this heap is the
//! alternative strategy measured by the `lazy_greedy` ablation bench.
//!
//! The stale scores here are the same bound type the pruned scan path
//! ([`PrunedScan`]) keeps per set: a last exact value that submodularity
//! turns into a monotone non-increasing upper bound (DESIGN.md §15). The
//! scan uses its bounds to skip exact recounts; this heap additionally
//! exposes [`drop_below`](LazyGreedy::drop_below) to discard entries whose
//! upper bound already fails an eligibility floor without rescoring them.
//!
//! [`CoverState`]: crate::cover_state::CoverState
//! [`PrunedScan`]: crate::algorithms::scan::PrunedScan

use crate::engine::{Deadline, DegradeReason};
use crate::telemetry::{NoopObserver, Observer};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry: an id with a possibly stale score and the epoch at which
/// the score was computed.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    score: f64,
    /// Secondary tie-break score (higher wins), e.g. raw benefit.
    tie: f64,
    id: u32,
    epoch: u64,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on (score, tie, lower id preferred).
        self.score
            .total_cmp(&other.score)
            .then_with(|| self.tie.total_cmp(&other.tie))
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Lazy max-selector over ids with monotonically non-increasing scores.
pub struct LazyGreedy {
    heap: BinaryHeap<Entry>,
    epoch: u64,
    /// Number of score recomputations performed (for instrumentation).
    pub recomputations: u64,
}

impl LazyGreedy {
    /// Creates an empty selector.
    pub fn new() -> LazyGreedy {
        LazyGreedy {
            heap: BinaryHeap::new(),
            epoch: 0,
            recomputations: 0,
        }
    }

    /// Creates a selector seeded with `(id, score, tie)` triples.
    pub fn with_candidates(candidates: impl IntoIterator<Item = (u32, f64, f64)>) -> LazyGreedy {
        let mut lg = LazyGreedy::new();
        for (id, score, tie) in candidates {
            lg.push(id, score, tie);
        }
        lg
    }

    /// Inserts a candidate with its current score.
    pub fn push(&mut self, id: u32, score: f64, tie: f64) {
        self.heap.push(Entry {
            score,
            tie,
            id,
            epoch: self.epoch,
        });
    }

    /// Number of live heap entries (stale duplicates included).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Advances the epoch; entries pushed before this call are treated as
    /// stale and re-scored before being returned. Call after every
    /// selection that changes marginal benefits.
    pub fn invalidate(&mut self) {
        self.epoch += 1;
    }

    /// Discards every entry whose (possibly stale) score is already below
    /// `floor`, reporting the count as a `scan_pruned` advisory event.
    ///
    /// Sound for the same reason the pruned scan's bound test is: a stale
    /// score is an upper bound on the current one, so an entry below the
    /// floor now can never satisfy it later. Use when the selection loop
    /// carries an eligibility floor (e.g. CWSC's `rem/i`) to shed dead
    /// heap weight without paying a rescore per entry. Returns the number
    /// of entries dropped.
    pub fn drop_below<O: Observer + ?Sized>(&mut self, floor: f64, obs: &mut O) -> usize {
        let before = self.heap.len();
        self.heap.retain(|e| e.score >= floor);
        let dropped = before - self.heap.len();
        if dropped > 0 {
            obs.scan_pruned(dropped as u64);
        }
        dropped
    }

    /// Pops the candidate with the maximum *current* score.
    ///
    /// `rescore(id)` must return the current `(score, tie)` for `id`, or
    /// `None` if the candidate is no longer eligible and should be dropped.
    /// Scores must never increase between epochs; a stale entry is thus an
    /// upper bound and the first fresh top-of-heap is the true maximum.
    pub fn pop_max(
        &mut self,
        rescore: impl FnMut(u32) -> Option<(f64, f64)>,
    ) -> Option<(u32, f64)> {
        self.pop_max_observed(&mut NoopObserver, rescore)
    }

    /// [`pop_max`](LazyGreedy::pop_max) reporting each stale pop as a
    /// `heap_stale_pop` event (the run length between selections is the
    /// heap's "re-heapify depth").
    pub fn pop_max_observed<O: Observer + ?Sized>(
        &mut self,
        obs: &mut O,
        mut rescore: impl FnMut(u32) -> Option<(f64, f64)>,
    ) -> Option<(u32, f64)> {
        while let Some(top) = self.heap.pop() {
            if top.epoch == self.epoch {
                return Some((top.id, top.score));
            }
            obs.heap_stale_pop();
            self.recomputations += 1;
            if let Some((score, tie)) = rescore(top.id) {
                debug_assert!(
                    score <= top.score + 1e-9,
                    "lazy-greedy requires non-increasing scores (id {}: {} -> {})",
                    top.id,
                    top.score,
                    score
                );
                self.heap.push(Entry {
                    score,
                    tie,
                    id: top.id,
                    epoch: self.epoch,
                });
            }
        }
        None
    }

    /// [`pop_max_observed`](LazyGreedy::pop_max_observed) under a
    /// [`Deadline`]: consumes one work tick per pop attempt (stale pops
    /// included, so runaway re-heapify chains stay interruptible) and
    /// stops with `Err(reason)` when the deadline expires. The popped
    /// entry order is unchanged from the deadline-free path.
    pub fn pop_max_within<O: Observer + ?Sized>(
        &mut self,
        deadline: &Deadline,
        obs: &mut O,
        mut rescore: impl FnMut(u32) -> Option<(f64, f64)>,
    ) -> Result<Option<(u32, f64)>, DegradeReason> {
        loop {
            deadline.checkpoint()?;
            let Some(top) = self.heap.pop() else {
                return Ok(None);
            };
            if top.epoch == self.epoch {
                return Ok(Some((top.id, top.score)));
            }
            obs.heap_stale_pop();
            self.recomputations += 1;
            if let Some((score, tie)) = rescore(top.id) {
                debug_assert!(
                    score <= top.score + 1e-9,
                    "lazy-greedy requires non-increasing scores (id {}: {} -> {})",
                    top.id,
                    top.score,
                    score
                );
                self.heap.push(Entry {
                    score,
                    tie,
                    id: top.id,
                    epoch: self.epoch,
                });
            }
        }
    }
}

impl Default for LazyGreedy {
    fn default() -> Self {
        LazyGreedy::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_max_when_fresh() {
        let mut lg = LazyGreedy::with_candidates([(0, 1.0, 0.0), (1, 3.0, 0.0), (2, 2.0, 0.0)]);
        let (id, score) = lg.pop_max(|_| unreachable!("all fresh")).unwrap();
        assert_eq!(id, 1);
        assert_eq!(score, 3.0);
    }

    #[test]
    fn stale_entries_are_rescored() {
        let mut lg = LazyGreedy::with_candidates([(0, 10.0, 0.0), (1, 5.0, 0.0)]);
        lg.invalidate();
        // id 0 decayed from 10 to 1; id 1 stays 5 -> max should be 1
        let current = [1.0, 5.0];
        let (id, score) = lg.pop_max(|i| Some((current[i as usize], 0.0))).unwrap();
        assert_eq!(id, 1);
        assert_eq!(score, 5.0);
        assert!(lg.recomputations >= 1);
    }

    #[test]
    fn dropped_candidates_disappear() {
        let mut lg = LazyGreedy::with_candidates([(0, 10.0, 0.0), (1, 5.0, 0.0)]);
        lg.invalidate();
        // both become ineligible
        assert_eq!(lg.pop_max(|_| None), None);
        assert!(lg.is_empty());
    }

    #[test]
    fn tie_break_prefers_higher_tie_then_lower_id() {
        let mut lg = LazyGreedy::with_candidates([(5, 1.0, 2.0), (3, 1.0, 7.0), (4, 1.0, 7.0)]);
        let (id, _) = lg.pop_max(|_| unreachable!()).unwrap();
        assert_eq!(id, 3);
    }

    #[test]
    fn sequence_of_selections_matches_eager() {
        // Simulated coverage instance: scores decay after each pick.
        let mut scores = [4.0, 3.0, 5.0, 1.0];
        let mut lg = LazyGreedy::with_candidates(
            scores.iter().enumerate().map(|(i, &s)| (i as u32, s, 0.0)),
        );
        let mut picked = Vec::new();
        for _ in 0..3 {
            let (id, _) = lg
                .pop_max(|i| {
                    let s = scores[i as usize];
                    (s > 0.0).then_some((s, 0.0))
                })
                .unwrap();
            picked.push(id);
            scores[id as usize] = 0.0;
            // every remaining score decays a little (submodular shrink)
            for s in scores.iter_mut() {
                *s = (*s - 0.5).max(0.0);
            }
            lg.invalidate();
        }
        assert_eq!(picked, vec![2, 0, 1]);
    }

    #[test]
    fn observed_pop_counts_stale_pops() {
        use crate::telemetry::MetricsRecorder;
        let mut lg = LazyGreedy::with_candidates([(0, 10.0, 0.0), (1, 5.0, 0.0)]);
        lg.invalidate();
        let mut m = MetricsRecorder::new();
        let current = [1.0, 5.0];
        let (id, _) = lg
            .pop_max_observed(&mut m, |i| Some((current[i as usize], 0.0)))
            .unwrap();
        assert_eq!(id, 1);
        assert_eq!(m.heap_stale_pops, lg.recomputations);
        assert!(m.heap_stale_pops >= 1);
    }

    #[test]
    fn drop_below_sheds_only_provably_ineligible_entries() {
        use crate::telemetry::MetricsRecorder;
        let mut lg = LazyGreedy::with_candidates([
            (0, 10.0, 0.0),
            (1, 5.0, 0.0),
            (2, 2.0, 0.0),
            (3, 1.0, 0.0),
        ]);
        let mut m = MetricsRecorder::new();
        let dropped = lg.drop_below(5.0, &mut m);
        assert_eq!(dropped, 2);
        assert_eq!(lg.len(), 2);
        assert_eq!(m.scan_candidates_pruned, 2);
        // Survivors pop in order; the dropped ids never resurface.
        assert_eq!(lg.pop_max(|_| unreachable!()).unwrap().0, 0);
        assert_eq!(lg.pop_max(|_| unreachable!()).unwrap().0, 1);
        assert!(lg.pop_max(|_| Some((0.0, 0.0))).is_none());
        // Dropping nothing stays silent.
        let mut lg2 = LazyGreedy::with_candidates([(0, 3.0, 0.0)]);
        assert_eq!(lg2.drop_below(1.0, &mut m), 0);
        assert_eq!(m.scan_candidates_pruned, 2);
    }

    #[test]
    fn empty_heap_pops_none() {
        let mut lg = LazyGreedy::new();
        assert_eq!(lg.pop_max(|_| Some((0.0, 0.0))), None);
        assert_eq!(lg.len(), 0);
    }

    #[test]
    fn deadline_pop_matches_plain_pop_when_unbounded() {
        use crate::engine::Deadline;
        use crate::telemetry::MetricsRecorder;
        let mut a = LazyGreedy::with_candidates([(0, 10.0, 0.0), (1, 5.0, 0.0)]);
        let mut b = LazyGreedy::with_candidates([(0, 10.0, 0.0), (1, 5.0, 0.0)]);
        a.invalidate();
        b.invalidate();
        let current = [1.0, 5.0];
        let plain = a.pop_max(|i| Some((current[i as usize], 0.0)));
        let deadline = Deadline::unbounded();
        let within = b
            .pop_max_within(&deadline, &mut MetricsRecorder::new(), |i| {
                Some((current[i as usize], 0.0))
            })
            .unwrap();
        assert_eq!(plain, within);
        assert!(deadline.ticks() >= 2, "stale pop + fresh pop each tick");
    }

    #[test]
    fn deadline_pop_stops_mid_reheapify() {
        use crate::engine::{Deadline, DegradeReason};
        use crate::telemetry::MetricsRecorder;
        let mut lg = LazyGreedy::with_candidates((0..16u32).map(|i| (i, 100.0 - i as f64, 0.0)));
        lg.invalidate();
        let deadline = Deadline::unbounded().with_tick_budget(3);
        let err = lg
            .pop_max_within(&deadline, &mut MetricsRecorder::new(), |_| Some((0.0, 0.0)))
            .unwrap_err();
        assert_eq!(err, DegradeReason::TickBudget);
    }
}
