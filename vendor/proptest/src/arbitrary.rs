//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::distributions::{Distribution, Standard};
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`: full range for integers and `bool`,
/// unit interval for floats.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy backing [`any`], sampling `T`'s standard distribution.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        Standard.sample(&mut rng.rng)
    }
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(PhantomData)
            }
        }
    )*};
}
arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

#[cfg(test)]
mod tests {
    use crate::test_runner::{ProptestConfig, TestRunner};

    #[test]
    fn any_bool_takes_both_values() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(1));
        let strat = super::any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(runner.sample(&strat))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
