//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of proptest it uses: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies, [`collection`]
//! and [`option`] generators, [`arbitrary::any`], and the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`], and [`prop_oneof!`] macros.
//!
//! Differences from upstream, deliberate for this workspace:
//!
//! * **No shrinking.** A failing case panics with its case number; runs are
//!   seeded deterministically (override with `PROPTEST_SEED`), so a failure
//!   reproduces exactly on re-run rather than being minimized.
//! * `prop_assert!` / `prop_assert_eq!` panic directly instead of returning
//!   `Err`, which is equivalent under the deterministic runner.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob import used by test files: `use proptest::prelude::*;`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that samples its strategies `cases` times and
/// runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr);) => {};
    (@impl ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            while runner.next_case() {
                let _case = runner.case_guard();
                $(let $pat = runner.sample(&($strat));)+
                $body
            }
        }
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
