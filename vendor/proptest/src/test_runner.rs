//! Test execution: configuration, the RNG handle strategies draw from, and
//! the per-test runner the [`crate::proptest!`] macro drives.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The randomness handle passed to [`crate::strategy::Strategy::sample`].
#[derive(Debug)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

/// Runs a property test: draws `config.cases` samples deterministically.
///
/// The seed defaults to a fixed constant so CI failures reproduce locally;
/// set `PROPTEST_SEED=<u64>` to explore a different stream.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    case: u32,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner for one test function.
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5c5c_5eed_1cde_2015);
        TestRunner {
            config,
            rng: TestRng {
                rng: StdRng::seed_from_u64(seed),
            },
            case: 0,
            seed,
        }
    }

    /// Advances to the next case; `false` once all cases have run.
    pub fn next_case(&mut self) -> bool {
        if self.case >= self.config.cases {
            return false;
        }
        self.case += 1;
        true
    }

    /// Draws one value from `strategy`.
    pub fn sample<S: crate::strategy::Strategy>(&mut self, strategy: &S) -> S::Value {
        strategy.sample(&mut self.rng)
    }

    /// A guard that reports the failing case number if the test body
    /// panics, since there is no shrinking to point at a minimal input.
    pub fn case_guard(&self) -> CaseGuard {
        CaseGuard {
            case: self.case,
            total: self.config.cases,
            seed: self.seed,
        }
    }
}

/// See [`TestRunner::case_guard`].
#[derive(Debug)]
pub struct CaseGuard {
    case: u32,
    total: u32,
    seed: u64,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: failed at case {}/{} (seed {:#x}; rerun with \
                 PROPTEST_SEED={} to reproduce)",
                self.case, self.total, self.seed, self.seed
            );
        }
    }
}
