//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the runner's RNG state.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Uses each generated value to build a second strategy, then draws
    /// from that (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among type-erased strategies ([`crate::prop_oneof!`]).
#[derive(Debug)]
pub struct Union<V> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty variant list.
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.rng.gen_range(0..self.variants.len());
        self.variants[i].sample(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{ProptestConfig, TestRunner};

    #[test]
    fn combinators_compose() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(1));
        let strat = (1usize..=4, 0u32..10)
            .prop_flat_map(|(n, base)| {
                crate::collection::vec((0u32..5).prop_map(move |x| x + base), n)
            })
            .prop_map(|v| v.len());
        for _ in 0..200 {
            let len = runner.sample(&strat);
            assert!((1..=4).contains(&len));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(1));
        let strat = crate::prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[runner.sample(&strat) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
