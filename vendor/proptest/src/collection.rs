//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;

/// An inclusive size bound for collection strategies. Accepts an exact
/// `usize`, a half-open `lo..hi`, or an inclusive `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates a `BTreeSet` with between `size.lo` and `size.hi` distinct
/// elements drawn from `element`.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Duplicates don't grow the set, so bound the draw count: small
        // element domains may not be able to reach `target` distinct values.
        let max_draws = target.saturating_mul(8) + 16;
        let mut draws = 0;
        while set.len() < target && draws < max_draws {
            set.insert(self.element.sample(rng));
            draws += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::{ProptestConfig, TestRunner};

    #[test]
    fn vec_respects_size_bounds() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(1));
        let exact = super::vec(0u32..5, 7usize);
        let ranged = super::vec(0u32..5, 2..6);
        for _ in 0..100 {
            assert_eq!(runner.sample(&exact).len(), 7);
            let len = runner.sample(&ranged).len();
            assert!((2..=5).contains(&len));
        }
    }

    #[test]
    fn btree_set_is_distinct_and_caps_at_domain() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(1));
        // Domain has 3 values but we ask for up to 10: must terminate.
        let strat = super::btree_set(0u32..3, 1..=10);
        for _ in 0..100 {
            let s = runner.sample(&strat);
            assert!(!s.is_empty() && s.len() <= 3);
            assert!(s.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn flat_map_sized_rows_match_header() {
        // The workspace's dominant pattern: attr count drives row width.
        let mut runner = TestRunner::new(ProptestConfig::with_cases(1));
        let strat = (1usize..=3, 1usize..=8).prop_flat_map(|(attrs, rows)| {
            super::vec((super::vec(0u8..4, attrs), 0u8..40), rows).prop_map(move |rs| (attrs, rs))
        });
        for _ in 0..100 {
            let (attrs, rows) = runner.sample(&strat);
            assert!(!rows.is_empty() && rows.len() <= 8);
            assert!(rows.iter().all(|(vals, _)| vals.len() == attrs));
        }
    }
}
