//! The `Option` strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Generates `Some` of the inner strategy's value half the time and `None`
/// the other half.
pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
    OptionStrategy { element }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    element: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        if rng.rng.gen_bool(0.5) {
            Some(self.element.sample(rng))
        } else {
            None
        }
    }
}
