//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, and nothing in this
//! workspace actually serializes — the `serde` derives on public data types
//! are a convenience for downstream users with a real serde. This vendored
//! crate keeps those annotations compiling: it declares the two trait names
//! and (behind the `derive` feature) re-exports inert derive macros that
//! expand to nothing. Swapping in the real `serde` is a one-line change in
//! the workspace manifest once a registry is reachable.

/// Marker trait standing in for `serde::Serialize`. The inert derive does
/// not implement it; no code in this workspace requires the bound.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
