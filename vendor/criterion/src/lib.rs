//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! a minimal wall-clock harness covering the API its benches use:
//! [`Criterion`] with `sample_size` / `warm_up_time` / `measurement_time`,
//! [`BenchmarkGroup`] via `benchmark_group`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It reports mean / min / max wall-clock per iteration on stdout. There is
//! no statistical outlier analysis, no saved baselines, and no HTML report
//! — the workspace's regression trajectory lives in `scwsc_bench record` /
//! `diff` snapshots instead, which is why a thin harness suffices here.

use std::time::{Duration, Instant};

/// An identity function that defeats constant-folding of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Sizing hint for [`Bencher::iter_batched`] setup batches. The stub runs
/// one setup per iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch many per allocation.
    SmallInput,
    /// Inputs are large; batch few.
    LargeInput,
    /// Set up each iteration independently.
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config {
                sample_size: 20,
                warm_up_time: Duration::from_millis(300),
                measurement_time: Duration::from_secs(2),
            },
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Sets how long each benchmark warms up before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Caps how long the sampling phase of each benchmark may take.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            config,
        }
    }
}

/// A named set of benchmarks sharing configuration overrides.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    config: Config,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Overrides the warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Overrides the measurement-time cap for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.config,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, name);
        self
    }

    /// Ends the group. (The stub reports eagerly, so this is a no-op kept
    /// for API compatibility.)
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the measurement loop.
#[derive(Debug)]
pub struct Bencher {
    config: Config,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.run(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }

    fn run<F: FnMut() -> Duration>(&mut self, mut one: F) {
        let warm_up_until = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_up_until {
            one();
        }
        let deadline = Instant::now() + self.config.measurement_time;
        for i in 0..self.config.sample_size {
            self.samples.push(one());
            // Always collect at least two samples so min/max mean something,
            // but respect the time cap for slow benchmarks.
            if i >= 1 && Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, group: &str, name: &str) {
        if self.samples.is_empty() {
            println!("{group}/{name}: no samples collected");
            return;
        }
        let n = self.samples.len() as u32;
        let mean = self.samples.iter().sum::<Duration>() / n;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!("{group}/{name}: mean {mean:?} (min {min:?}, max {max:?}, n={n})");
    }
}

/// Declares a benchmark group function named `$name` that runs every target
/// against the given [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        let mut group = c.benchmark_group("stub");
        group
            .sample_size(2)
            .bench_function("iter", |b| b.iter(|| black_box(3u64 * 7)))
            .bench_function("batched", |b| {
                b.iter_batched(
                    || vec![1u8; 64],
                    |v| {
                        calls += 1;
                        black_box(v.len())
                    },
                    BatchSize::SmallInput,
                )
            });
        group.finish();
        assert!(calls >= 2, "batched routine must run at least twice");
    }
}
