//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this workspace vendors
//! the small slice of `rand` it actually uses: [`rngs::StdRng`] (a seeded,
//! deterministic generator), the [`Rng`] extension trait with `gen`,
//! `gen_bool`, and `gen_range`, and [`SeedableRng::seed_from_u64`]. The
//! stream is **not** bit-compatible with upstream `rand`; it is
//! deterministic per seed, which is all the workspace relies on (dataset
//! generators and benchmark workloads are keyed by explicit seeds).
//!
//! The generator is xoshiro256\*\* seeded via SplitMix64 — the same
//! construction upstream `rand` 0.8 uses for `SmallRng` on 64-bit targets —
//! so statistical quality is adequate for Zipf sampling and Box–Muller
//! transforms in the data generators.

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution (`f64`/`f32` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod distributions {
    //! The [`Distribution`] trait and the [`Standard`] distribution.

    use super::RngCore;

    /// Types that can produce values of `T` given a source of randomness.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: `[0, 1)` for floats,
    /// full-range for integers, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits → uniform on [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub mod uniform {
        //! Uniform sampling from standard range types.

        use crate::RngCore;

        /// Ranges that [`crate::Rng::gen_range`] accepts.
        pub trait SampleRange<T> {
            /// Samples one value uniformly from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        // Lemire-style bounded integers would be overkill here; modulo bias
        // over a 64-bit stream is < 2^-32 for every span this workspace
        // samples, far below anything the tests or generators can detect.
        macro_rules! int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start.wrapping_add((rng.next_u64() % span) as $t)
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                        if span == 0 {
                            // Full-width inclusive range: every value is fair.
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add((rng.next_u64() % span) as $t)
                    }
                }
            )*};
        }
        int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleRange<f64> for core::ops::Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: f64 = crate::Rng::gen(rng);
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u: f64 = crate::Rng::gen(rng);
                lo + u * (hi - lo)
            }
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256\*\* with
    /// SplitMix64 seeding. Deterministic per seed; not reproducing the
    /// upstream `rand::rngs::StdRng` (ChaCha12) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_land_in_unit_interval_and_vary() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            distinct.insert(x.to_bits());
        }
        assert!(distinct.len() > 990);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&z));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(9usize..=9), 9);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        let _ = rng.gen_bool(1.0); // must not panic at the boundary
    }
}
