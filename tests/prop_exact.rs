//! Differential testing of the branch-and-bound exact solver against
//! plain subset enumeration on tiny instances: same optimal cost, and
//! branch-and-bound's solution always satisfies the requirements.

use proptest::prelude::*;
use scwsc::prelude::*;

/// Optimal cost by enumerating every subset of at most `k` sets.
fn brute_force_optimum(system: &SetSystem, k: usize, target: usize) -> Option<f64> {
    let m = system.num_sets();
    assert!(m <= 12, "enumeration only for tiny instances");
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << m) {
        if mask.count_ones() as usize > k {
            continue;
        }
        let sets: Vec<u32> = (0..m as u32).filter(|&i| mask & (1 << i) != 0).collect();
        if system.coverage_of(&sets).count_ones() >= target {
            let cost = system.cost_of(&sets).value();
            best = Some(match best {
                None => cost,
                Some(b) => b.min(cost),
            });
        }
    }
    best
}

fn arb_system() -> impl Strategy<Value = SetSystem> {
    (2usize..=10, 0usize..=9).prop_flat_map(|(n, sets)| {
        let set = (
            proptest::collection::btree_set(0u32..n as u32, 1..=n),
            0u32..50,
        );
        proptest::collection::vec(set, sets).prop_map(move |sets| {
            let mut b = SetSystem::builder(n);
            for (members, cost) in sets {
                b.add_set(members, f64::from(cost));
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Branch and bound finds exactly the brute-force optimum (or agrees
    /// the instance is infeasible). Note: no universe set here, so
    /// infeasible instances genuinely occur and both must detect them.
    #[test]
    fn branch_and_bound_matches_enumeration(
        system in arb_system(),
        k in 0usize..=5,
        coverage in 0.0f64..=1.0,
    ) {
        let target = coverage_target(system.num_elements(), coverage);
        let brute = brute_force_optimum(&system, k, target);
        let bnb = scwsc::sets::algorithms::exact_optimal_with_target(&system, k, target);
        match (brute, bnb) {
            (Some(b), Some(sol)) => {
                prop_assert!(
                    (sol.total_cost().value() - b).abs() < 1e-9,
                    "bnb {} != brute {}",
                    sol.total_cost().value(),
                    b
                );
                prop_assert!(sol.covered() >= target);
                prop_assert!(sol.size() <= k.max(sol.size().min(k)));
            }
            (None, None) => {}
            (b, s) => prop_assert!(false, "brute {:?} vs bnb {:?}", b, s.map(|x| x.total_cost())),
        }
    }

    /// The solver is monotone in its inputs: loosening k or the target
    /// never increases the optimal cost.
    #[test]
    fn optimum_is_monotone(
        system in arb_system(),
        k in 1usize..=4,
        coverage in 0.1f64..=1.0,
    ) {
        let target = coverage_target(system.num_elements(), coverage);
        let tight = scwsc::sets::algorithms::exact_optimal_with_target(&system, k, target);
        let looser_k = scwsc::sets::algorithms::exact_optimal_with_target(&system, k + 1, target);
        let looser_t =
            scwsc::sets::algorithms::exact_optimal_with_target(&system, k, target.saturating_sub(1));
        if let Some(t) = &tight {
            let lk = looser_k.expect("loosening k keeps feasibility");
            prop_assert!(lk.total_cost() <= t.total_cost());
            let lt = looser_t.expect("loosening target keeps feasibility");
            prop_assert!(lt.total_cost() <= t.total_cost());
        }
    }
}
