//! End-to-end test of the `scwsc_bench` snapshot pipeline: record the
//! smoke suite twice, self-diff clean, then perturb a counter in the JSON
//! text and check the diff fails — the counter-exact regression gate CI
//! relies on.

use std::path::PathBuf;
use std::process::Command;

/// Locates a compiled workspace binary next to the test binary.
fn bin_path(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // test binary name
    path.pop(); // deps/
    path.push(name);
    path
}

fn bench_available() -> bool {
    bin_path("scwsc_bench").exists()
}

#[test]
fn record_then_diff_catches_perturbed_counter() {
    if !bench_available() {
        eprintln!("scwsc_bench not built (run `cargo build --workspace`); skipping");
        return;
    }
    let dir = std::env::temp_dir().join("scwsc_bench_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("BENCH_base.json");
    let fresh = dir.join("BENCH_fresh.json");

    for (label, path) in [("base", &base), ("fresh", &fresh)] {
        let output = Command::new(bin_path("scwsc_bench"))
            .args([
                "record",
                "--suite",
                "smoke",
                "--quick",
                "--label",
                label,
                "--out",
                path.to_str().unwrap(),
            ])
            .output()
            .expect("scwsc_bench runs");
        assert!(
            output.status.success(),
            "record {label} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    let base_text = std::fs::read_to_string(&base).expect("snapshot written");
    assert!(base_text.contains("\"label\": \"base\""), "{base_text}");
    assert!(base_text.contains("smoke/cwsc_opt"), "{base_text}");

    // Two independent recordings of a deterministic workload: the exact
    // counter comparison must pass even though wall-clock differs.
    let output = Command::new(bin_path("scwsc_bench"))
        .args([
            "diff",
            base.to_str().unwrap(),
            fresh.to_str().unwrap(),
            "--counters-only",
        ])
        .output()
        .expect("scwsc_bench runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "self-diff regressed:\n{stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("0 regression(s)"), "{stdout}");

    // Perturb one deterministic counter in the JSON text; the diff must
    // fail with a non-zero exit and name the counter.
    let selections = "\"selections\": ";
    let idx = base_text.find(selections).expect("counter present");
    let rest = &base_text[idx + selections.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    let value: u64 = digits.parse().expect("counter value");
    let perturbed_text = base_text.replacen(
        &format!("{selections}{digits}"),
        &format!("{selections}{}", value + 1),
        1,
    );
    let perturbed = dir.join("BENCH_perturbed.json");
    std::fs::write(&perturbed, perturbed_text).unwrap();

    let output = Command::new(bin_path("scwsc_bench"))
        .args([
            "diff",
            base.to_str().unwrap(),
            perturbed.to_str().unwrap(),
            "--counters-only",
        ])
        .output()
        .expect("scwsc_bench runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        !output.status.success(),
        "perturbed counter must fail the diff:\n{stdout}"
    );
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("selections"), "{stdout}");

    for p in [&base, &fresh, &perturbed] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn bench_rejects_bad_usage() {
    if !bench_available() {
        eprintln!("scwsc_bench not built; skipping");
        return;
    }
    for args in [
        &["record", "--suite", "nope"] as &[&str],
        &["diff", "only-one.json"],
        &["frobnicate"],
    ] {
        let output = Command::new(bin_path("scwsc_bench"))
            .args(args)
            .output()
            .expect("scwsc_bench runs");
        assert!(!output.status.success(), "{args:?} should fail");
    }
}

#[test]
fn solve_profile_prints_span_tree() {
    if !bin_path("scwsc_solve").exists() {
        eprintln!("scwsc_solve not built; skipping");
        return;
    }
    let output = Command::new(bin_path("scwsc_solve"))
        .args([
            "--rows",
            "600",
            "--k",
            "5",
            "--coverage",
            "0.3",
            "--algorithm",
            "cwsc",
            "--profile",
        ])
        .output()
        .expect("solver runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("== span profile =="), "{stdout}");
    assert!(stdout.contains("total"), "{stdout}");
    assert!(stdout.contains("select"), "{stdout}");
    assert!(stdout.contains("100.0%"), "{stdout}");
}
