//! Property tests for the substrate data structures against simple
//! reference models: bitsets vs `Vec<bool>`, the lazy-greedy heap vs an
//! eager scan, cost algebra, and pattern-lattice laws.

use proptest::prelude::*;
use scwsc::patterns::Pattern;
use scwsc::sets::bitset::BitSet;
use scwsc::sets::cost::Cost;
use scwsc::sets::lazy_greedy::LazyGreedy;

#[derive(Debug, Clone)]
enum Op {
    Insert(usize),
    Remove(usize),
    Clear,
    Fill,
}

fn arb_ops(len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..len).prop_map(Op::Insert),
            (0..len).prop_map(Op::Remove),
            Just(Op::Clear),
            Just(Op::Fill),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BitSet behaves like a Vec<bool> under arbitrary operation traces.
    #[test]
    fn bitset_matches_model(len in 1usize..200, ops in arb_ops(199)) {
        let mut bits = BitSet::new(len);
        let mut model = vec![false; len];
        for op in ops {
            match op {
                Op::Insert(i) if i < len => {
                    let was_new = bits.insert(i);
                    prop_assert_eq!(was_new, !model[i]);
                    model[i] = true;
                }
                Op::Remove(i) if i < len => {
                    let was_set = bits.remove(i);
                    prop_assert_eq!(was_set, model[i]);
                    model[i] = false;
                }
                Op::Clear => {
                    bits.clear();
                    model.fill(false);
                }
                Op::Fill => {
                    bits.fill();
                    model.fill(true);
                }
                _ => {}
            }
        }
        prop_assert_eq!(bits.count_ones(), model.iter().filter(|&&b| b).count());
        let expected: Vec<usize> = (0..len).filter(|&i| model[i]).collect();
        prop_assert_eq!(bits.to_vec(), expected);
    }

    /// Set algebra matches the boolean model.
    #[test]
    fn bitset_algebra_matches_model(
        len in 1usize..150,
        a in proptest::collection::vec(any::<bool>(), 1..150),
        b in proptest::collection::vec(any::<bool>(), 1..150),
    ) {
        let n = len.min(a.len()).min(b.len());
        let mut x = BitSet::new(n);
        let mut y = BitSet::new(n);
        for i in 0..n {
            if a[i] { x.insert(i); }
            if b[i] { y.insert(i); }
        }
        let inter = x.intersection_count(&y);
        prop_assert_eq!(inter, (0..n).filter(|&i| a[i] && b[i]).count());

        let mut u = x.clone();
        u.union_with(&y);
        prop_assert_eq!(u.count_ones(), (0..n).filter(|&i| a[i] || b[i]).count());

        let mut d = x.clone();
        d.difference_with(&y);
        prop_assert_eq!(d.count_ones(), (0..n).filter(|&i| a[i] && !b[i]).count());

        // count_unset is |ids| minus hits
        let ids: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(
            x.count_unset(ids.iter().map(|&i| i as usize)),
            (0..n).filter(|&i| !a[i]).count()
        );
    }

    /// Lazy greedy selects the same sequence as an eager argmax scan when
    /// scores decay monotonically.
    #[test]
    fn lazy_greedy_matches_eager(
        scores in proptest::collection::vec(0u32..1000, 1..30),
        decays in proptest::collection::vec(0u32..100, 1..30),
    ) {
        let n = scores.len();
        let mut eager: Vec<f64> = scores.iter().map(|&s| f64::from(s)).collect();
        let mut lazy_scores = eager.clone();
        let mut lg = LazyGreedy::with_candidates(
            eager.iter().enumerate().map(|(i, &s)| (i as u32, s, 0.0)),
        );
        let mut picked_eager = Vec::new();
        let mut picked_lazy = Vec::new();
        for round in 0..n {
            // Eager pick: max score, lower id wins ties; skip zeros.
            let best = (0..n)
                .filter(|&i| eager[i] > 0.0 && !picked_eager.contains(&i))
                .max_by(|&a, &b| eager[a].total_cmp(&eager[b]).then(b.cmp(&a)));
            if let Some(i) = best {
                picked_eager.push(i);
            }
            // Lazy pick with the same semantics.
            let lz = lg.pop_max(|id| {
                let s = lazy_scores[id as usize];
                (s > 0.0 && !picked_lazy.contains(&(id as usize))).then_some((s, 0.0))
            });
            if let Some((id, _)) = lz {
                picked_lazy.push(id as usize);
            }
            // Apply the same decay to every remaining score.
            let decay = f64::from(decays[round % decays.len()]);
            for i in 0..n {
                eager[i] = (eager[i] - decay).max(0.0);
                lazy_scores[i] = (lazy_scores[i] - decay).max(0.0);
            }
            lg.invalidate();
        }
        prop_assert_eq!(picked_eager, picked_lazy);
    }

    /// Cost addition is commutative/associative and ordering is total.
    #[test]
    fn cost_algebra(a in 0.0f64..1e12, b in 0.0f64..1e12, c in 0.0f64..1e12) {
        let (x, y, z) = (
            Cost::new(a).unwrap(),
            Cost::new(b).unwrap(),
            Cost::new(c).unwrap(),
        );
        prop_assert_eq!(x + y, y + x);
        prop_assert!(((x + y) + z).value() - (x + (y + z)).value() <= 1e-3 * (a + b + c).max(1.0));
        prop_assert_eq!(x.cmp(&y), a.partial_cmp(&b).unwrap());
    }

    /// Lattice laws: parents generalize; a pattern generalizes all its
    /// children; specificity steps by one.
    #[test]
    fn pattern_lattice_laws(vals in proptest::collection::vec(proptest::option::of(0u32..5), 1..6)) {
        let p = Pattern::new(vals);
        for parent in p.parents() {
            prop_assert!(parent.generalizes(&p));
            prop_assert!(parent.is_parent_of(&p));
            prop_assert_eq!(parent.specificity() + 1, p.specificity());
        }
        prop_assert_eq!(p.parents().len(), p.specificity());
        for (attr, v) in p.values().iter().enumerate() {
            if v.is_none() {
                let child = p.child(attr, 3);
                prop_assert!(p.generalizes(&child));
                prop_assert!(p.is_parent_of(&child));
            }
        }
        prop_assert!(p.generalizes(&p));
    }
}
