//! Executable checks of the Section IV complexity constructions: the
//! Lemma 1 reduction ties minimum vertex covers of tripartite graphs to
//! minimum pattern covers, and we verify that correspondence with brute
//! force on small graphs.

use scwsc::patterns::reductions::{lemma1_instance, Lemma1Instance, TripartiteGraph};
use scwsc::prelude::*;

/// Brute-force minimum vertex cover size of a tripartite graph.
fn min_vertex_cover(graph: &TripartiteGraph) -> usize {
    // Enumerate all vertex subsets (vertices flattened across parts).
    let offsets = [
        0,
        graph.part_sizes[0],
        graph.part_sizes[0] + graph.part_sizes[1],
    ];
    let total: usize = graph.part_sizes.iter().sum();
    assert!(total <= 16, "brute force only for tiny graphs");
    let flat = |part: usize, idx: usize| offsets[part] + idx;
    (0u32..1 << total)
        .filter(|mask| {
            graph.edges.iter().all(|&((pa, ia), (pb, ib))| {
                mask & (1 << flat(pa, ia)) != 0 || mask & (1 << flat(pb, ib)) != 0
            })
        })
        .map(|mask| mask.count_ones() as usize)
        .min()
        .expect("the all-vertices set is always a cover")
}

/// Minimum number of patterns with cost ≤ τ covering ≥ the required
/// fraction, via the exact solver over a unit-cost system restricted to
/// affordable patterns (the Lemma 1 objective).
fn min_pattern_cover(inst: &Lemma1Instance) -> Option<usize> {
    let m = enumerate_all(&inst.table, CostFn::Max);
    let target = coverage_target(inst.table.num_rows(), inst.coverage_fraction);
    // Unit-cost copy of the affordable patterns.
    let mut b = SetSystem::builder(inst.table.num_rows());
    let mut any = false;
    for (id, set) in m.system.iter() {
        if set.cost().value() <= inst.tau {
            b.add_set(m.system.members(id).iter().copied(), 1.0);
            any = true;
        }
    }
    if !any {
        return None;
    }
    let unit = b.build().unwrap();
    let sol = scwsc::sets::algorithms::exact_optimal_with_target(&unit, unit.num_sets(), target)?;
    Some(sol.total_cost().value() as usize)
}

fn check(graph: &TripartiteGraph) {
    let inst = lemma1_instance(graph, 1.0, 50.0).unwrap();
    let vc = min_vertex_cover(graph);
    let pc = min_pattern_cover(&inst).expect("vertex patterns give a feasible cover");
    assert_eq!(
        pc, vc,
        "Lemma 1: min pattern cover must equal min vertex cover"
    );
}

#[test]
fn lemma1_triangle_plus_pendant() {
    check(&TripartiteGraph {
        part_sizes: [2, 1, 1],
        edges: vec![
            ((0, 0), (1, 0)),
            ((1, 0), (2, 0)),
            ((0, 0), (2, 0)),
            ((0, 1), (1, 0)),
        ],
    });
}

#[test]
fn lemma1_star() {
    // b0 touches everything: vertex cover of size 1.
    check(&TripartiteGraph {
        part_sizes: [3, 1, 2],
        edges: vec![
            ((0, 0), (1, 0)),
            ((0, 1), (1, 0)),
            ((0, 2), (1, 0)),
            ((1, 0), (2, 0)),
            ((1, 0), (2, 1)),
        ],
    });
}

#[test]
fn lemma1_matching() {
    // A perfect matching of 3 edges needs 3 vertices.
    check(&TripartiteGraph {
        part_sizes: [3, 3, 0],
        edges: vec![((0, 0), (1, 0)), ((0, 1), (1, 1)), ((0, 2), (1, 2))],
    });
}

#[test]
fn lemma1_complete_bipartite_k22() {
    check(&TripartiteGraph {
        part_sizes: [2, 2, 0],
        edges: vec![
            ((0, 0), (1, 0)),
            ((0, 0), (1, 1)),
            ((0, 1), (1, 0)),
            ((0, 1), (1, 1)),
        ],
    });
}

/// The blocking record `(x, y, z | W)` is never covered by an affordable
/// pattern, which is what forces the coverage fraction `m/(m+1)`.
#[test]
fn lemma1_blocking_record_uncoverable_under_tau() {
    let graph = TripartiteGraph {
        part_sizes: [1, 1, 1],
        edges: vec![((0, 0), (1, 0)), ((1, 0), (2, 0))],
    };
    let inst = lemma1_instance(&graph, 1.0, 9.0).unwrap();
    let m = enumerate_all(&inst.table, CostFn::Max);
    let blocker = (inst.table.num_rows() - 1) as u32;
    for (id, set) in m.system.iter() {
        if set.cost().value() <= inst.tau {
            assert!(
                !m.system.members(id).contains(&blocker),
                "affordable pattern {id} covers the blocking record"
            );
        }
    }
}
