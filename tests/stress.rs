//! Paper-scale stress tests — `#[ignore]`d by default; run with
//! `cargo test --release --test stress -- --ignored`.
//!
//! These exercise the full 700k-row scale of the paper's LBL workload and
//! the memory-heavy full-cube enumeration. They assert correctness
//! invariants only (no timing), so they are safe on any machine with a
//! few GB of RAM and a few minutes to spare.

use scwsc::data::lbl::LblConfig;
use scwsc::prelude::*;

#[test]
#[ignore = "paper-scale run (~1 minute in release)"]
fn optimized_algorithms_at_700k_rows() {
    let table = LblConfig::default().generate(); // 700k rows, full domains
    assert_eq!(table.num_rows(), 700_000);
    let space = PatternSpace::new(&table, CostFn::Max);

    let mut stats = Stats::new();
    let sol = opt_cwsc(&space, 10, 0.3, &mut stats).expect("feasible");
    sol.verify(&space);
    assert!(sol.size() <= 10);
    assert!(sol.covered >= coverage_target(700_000, 0.3));

    let params = CmcParams {
        discount_coverage: false,
        ..CmcParams::epsilon(10, 0.3, 1.0, 1.0)
    };
    let sol = opt_cmc(&space, &params, &mut Stats::new()).expect("feasible");
    sol.verify(&space);
    assert!(sol.size() <= 20);
    assert!(sol.covered >= coverage_target(700_000, 0.3));
}

#[test]
#[ignore = "memory-heavy full-cube enumeration (~2 GB, ~1 minute)"]
fn full_cube_enumeration_at_400k_rows() {
    let table = LblConfig {
        seed: 7,
        ..LblConfig::scaled(400_000)
    }
    .generate();
    let m = enumerate_all(&table, CostFn::Max);
    assert!(m.system.has_universe_set());
    assert!(
        m.num_patterns() > 100_000,
        "cube should be large: {}",
        m.num_patterns()
    );

    // Optimized and unoptimized CWSC still agree exactly at this scale.
    let space = PatternSpace::new(&table, CostFn::Max);
    let opt = opt_cwsc(&space, 10, 0.3, &mut Stats::new()).unwrap();
    let unopt = cwsc(&m.system, 10, 0.3, &mut Stats::new()).unwrap();
    assert_eq!(
        opt.patterns.iter().collect::<Vec<_>>(),
        m.solution_patterns(&unopt)
    );
}

#[test]
#[ignore = "long incremental stream (~30s)"]
fn incremental_stream_of_100k_arrivals() {
    use scwsc::sets::incremental::{IncrementalCover, RepairStrategy};
    let costs: Vec<f64> = (0..50)
        .map(|i| 1.0 + f64::from(i))
        .chain([10_000.0])
        .collect();
    let mut inc = IncrementalCover::with_strategy(&costs, 8, 0.5, RepairStrategy::Patch).unwrap();
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..100_000 {
        let mut sets = vec![50u32];
        for s in 0..50u32 {
            if next() % 11 == 0 {
                sets.push(s);
            }
        }
        inc.push_element(&sets).unwrap();
    }
    assert!(inc.covered() >= inc.target());
    assert!(inc.solution().len() <= 8);
    assert!(inc.resolves() + inc.patches() < 100_000);
}
