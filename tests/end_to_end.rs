//! End-to-end integration: the full pipeline from workload generation
//! through every solver, plus the future-work extensions, on one seeded
//! synthetic trace.

use scwsc::data::csv::{table_from_csv, table_to_csv};
use scwsc::data::lbl::LblConfig;
use scwsc::data::perturb::{lognormal_rerank, uniform_noise};
use scwsc::prelude::*;
use scwsc::sets::incremental::IncrementalCover;
use scwsc::sets::multiweight::{pareto_sweep, MultiWeightSystem};

fn trace(rows: usize) -> Table {
    LblConfig {
        rows,
        local_hosts: 30,
        remote_hosts: 40,
        ..LblConfig::default()
    }
    .generate()
}

#[test]
fn all_solvers_agree_on_validity() {
    let table = trace(1_500);
    let (k, coverage) = (6, 0.35);
    let target = coverage_target(table.num_rows(), coverage);

    let space = PatternSpace::new(&table, CostFn::Max);
    let m = enumerate_all(&table, CostFn::Max);

    // Optimized and unoptimized CWSC agree exactly.
    let opt = opt_cwsc(&space, k, coverage, &mut Stats::new()).unwrap();
    let unopt = cwsc(&m.system, k, coverage, &mut Stats::new()).unwrap();
    assert_eq!(
        opt.patterns.iter().collect::<Vec<_>>(),
        m.solution_patterns(&unopt)
    );
    opt.verify(&space);
    assert!(opt.size() <= k && opt.covered >= target);

    // Both CMC paths meet Theorem 4/5 bounds at the undiscounted target.
    let params = CmcParams {
        discount_coverage: false,
        ..CmcParams::epsilon(k, coverage, 1.0, 1.0)
    };
    let opt_c = opt_cmc(&space, &params, &mut Stats::new()).unwrap();
    opt_c.verify(&space);
    assert!(opt_c.covered >= target);
    assert!(opt_c.size() <= 2 * k);
    let unopt_c = cmc(&m.system, &params, &mut Stats::new()).unwrap();
    assert!(unopt_c.solution.covered() >= target);
    assert!(unopt_c.solution.size() <= 2 * k);

    // Baselines produce verifiable solutions too.
    let wsc = greedy_weighted_set_cover(&m.system, coverage, &mut Stats::new()).unwrap();
    assert!(wsc.covered() >= target);
    let mc = greedy_max_coverage(&m.system, k, &mut Stats::new());
    assert!(mc.size() <= k);
    assert!(
        mc.covered() >= opt.covered,
        "cost-blind max coverage maximizes coverage"
    );
}

#[test]
fn csv_roundtrip_preserves_solutions() {
    let table = trace(400);
    let csv = table_to_csv(&table);
    let back = table_from_csv(&csv).unwrap();
    let a = opt_cwsc(
        &PatternSpace::new(&table, CostFn::Max),
        4,
        0.3,
        &mut Stats::new(),
    )
    .unwrap();
    let b = opt_cwsc(
        &PatternSpace::new(&back, CostFn::Max),
        4,
        0.3,
        &mut Stats::new(),
    )
    .unwrap();
    assert_eq!(a.covered, b.covered);
    assert!((a.total_cost - b.total_cost).abs() < 1e-9);
    assert_eq!(a.patterns.len(), b.patterns.len());
}

#[test]
fn perturbations_keep_problems_solvable() {
    let table = trace(600);
    for t in [
        uniform_noise(&table, 0.5, 1),
        lognormal_rerank(&table, 2.0, 2.0, 1),
    ] {
        let space = PatternSpace::new(&t, CostFn::Max);
        let sol = opt_cwsc(&space, 5, 0.4, &mut Stats::new()).unwrap();
        sol.verify(&space);
        assert!(sol.covered >= coverage_target(t.num_rows(), 0.4));
    }
}

/// The incremental maintainer tracks a growing prefix of the trace and
/// always matches a from-scratch solve's validity.
#[test]
fn incremental_matches_batch_validity() {
    let table = trace(300);
    // Sets = the ten most specific protocol patterns + universe; elements
    // arrive row by row reporting which sets contain them.
    let space = PatternSpace::new(&table, CostFn::Max);
    let root = space.root();
    let root_rows = space.benefit(&root);
    let mut sets: Vec<(Vec<u32>, f64)> = space
        .children_with_rows(&root, &root_rows)
        .into_iter()
        .map(|(_, rows)| {
            let cost = space.cost(&rows);
            (rows, cost)
        })
        .collect();
    sets.push((root_rows.clone(), space.cost(&root_rows)));

    let costs: Vec<f64> = sets.iter().map(|(_, c)| *c).collect();
    let mut inc = IncrementalCover::new(&costs, 4, 0.5).unwrap();
    for row in 0..table.num_rows() as u32 {
        let memberships: Vec<u32> = sets
            .iter()
            .enumerate()
            .filter(|(_, (rows, _))| rows.binary_search(&row).is_ok())
            .map(|(i, _)| i as u32)
            .collect();
        inc.push_element(&memberships).unwrap();
        assert!(inc.covered() >= inc.target());
        assert!(inc.solution().len() <= 4);
    }
    // Final state agrees with a batch solve over the snapshot.
    let snapshot = inc.snapshot();
    let batch = cwsc(&snapshot, 4, 0.5, &mut Stats::new()).unwrap();
    assert!(batch.covered() >= inc.target());
    assert!(inc.resolves() <= table.num_rows() as u64);
}

#[test]
fn multiweight_scalarization_consistent_with_single_weight() {
    let table = trace(300);
    let m = enumerate_all(&table, CostFn::Max);
    // Duplicate the single weight into two identical criteria: any λ with
    // λ1+λ2 = 1 must reproduce the single-weight solution.
    let mut mw = MultiWeightSystem::new(m.system.num_elements(), 2);
    for (_, set) in m.system.iter() {
        let w = set.cost().value();
        mw.add_set(set.members().iter().copied(), vec![w, w])
            .unwrap();
    }
    let scalar = mw.scalarize(&[0.25, 0.75]).unwrap();
    let a = cwsc(&scalar, 5, 0.4, &mut Stats::new()).unwrap();
    let b = cwsc(&m.system, 5, 0.4, &mut Stats::new()).unwrap();
    assert_eq!(a.sets(), b.sets());

    let frontier = pareto_sweep(&mw, 5, 0.4, &[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
    assert_eq!(
        frontier.len(),
        1,
        "identical criteria collapse the frontier"
    );
}
