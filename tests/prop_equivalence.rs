//! Property tests for the paper's central claim about the Section V-C
//! optimization: "the optimized algorithm chooses exactly the same
//! patterns (and in the same order) as the unoptimized algorithm,
//! provided that both algorithms break ties (on marginal gain) the same
//! way" — plus the Theorem 3 reduction as an executable oracle.

use proptest::prelude::*;
use scwsc::patterns::reductions::set_system_to_patterns;
use scwsc::patterns::InvertedIndex;
use scwsc::prelude::*;

/// A random small table: 1–3 attributes with tiny domains (so patterns
/// overlap heavily), small integer measures.
fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..=3, 1usize..=24).prop_flat_map(|(attrs, rows)| {
        let row = (
            proptest::collection::vec(0u8..4, attrs),
            0u8..40, // measure
        );
        proptest::collection::vec(row, rows).prop_map(move |rows| {
            let names: Vec<String> = (0..attrs).map(|a| format!("a{a}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let mut b = Table::builder(&refs, "m");
            for (vals, measure) in rows {
                let svals: Vec<String> = vals.iter().map(|v| format!("v{v}")).collect();
                let srefs: Vec<&str> = svals.iter().map(String::as_str).collect();
                b.push_row(&srefs, f64::from(measure)).unwrap();
            }
            b.build()
        })
    })
}

/// A random small set system that always contains a universe set.
fn arb_system() -> impl Strategy<Value = SetSystem> {
    (2usize..=12, 1usize..=10).prop_flat_map(|(n, sets)| {
        let set = (
            proptest::collection::btree_set(0u32..n as u32, 1..=n),
            0u32..50,
        );
        proptest::collection::vec(set, sets).prop_map(move |sets| {
            let mut b = SetSystem::builder(n);
            for (members, cost) in sets {
                b.add_set(members, f64::from(cost));
            }
            b.add_universe_set(60.0);
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Optimized CWSC (Fig. 3) selects exactly the same patterns, in the
    /// same order, as unoptimized CWSC over the full materialization.
    #[test]
    fn optimized_cwsc_equals_unoptimized(
        table in arb_table(),
        k in 1usize..=5,
        coverage in 0.1f64..=1.0,
    ) {
        let space = PatternSpace::new(&table, CostFn::Max);
        let m = enumerate_all(&table, CostFn::Max);
        let opt = opt_cwsc(&space, k, coverage, &mut Stats::new());
        let unopt = cwsc(&m.system, k, coverage, &mut Stats::new());
        match (opt, unopt) {
            (Ok(o), Ok(u)) => {
                let u_patterns: Vec<&Pattern> = m.solution_patterns(&u);
                let o_patterns: Vec<&Pattern> = o.patterns.iter().collect();
                prop_assert_eq!(o_patterns, u_patterns);
                prop_assert_eq!(o.covered, u.covered());
                prop_assert!((o.total_cost - u.total_cost().value()).abs() < 1e-9);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "optimized {:?} vs unoptimized {:?}", a, b),
        }
    }

    /// The equivalence holds for other lattice-monotone cost functions.
    #[test]
    fn optimized_cwsc_equals_unoptimized_sum_cost(
        table in arb_table(),
        k in 1usize..=4,
    ) {
        let space = PatternSpace::new(&table, CostFn::Sum);
        let m = enumerate_all(&table, CostFn::Sum);
        let opt = opt_cwsc(&space, k, 0.5, &mut Stats::new());
        let unopt = cwsc(&m.system, k, 0.5, &mut Stats::new());
        match (opt, unopt) {
            (Ok(o), Ok(u)) => {
                let u_patterns: Vec<&Pattern> = m.solution_patterns(&u);
                prop_assert_eq!(o.patterns.iter().collect::<Vec<_>>(), u_patterns);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "optimized {:?} vs unoptimized {:?}", a, b),
        }
    }

    /// Theorem 3: mapping an arbitrary set system to patterns preserves
    /// benefit sets exactly, so CWSC run over the mapped patterns (with
    /// their original weights) selects sets with identical coverage/cost.
    #[test]
    fn theorem3_reduction_preserves_cwsc(
        system in arb_system(),
        k in 1usize..=4,
    ) {
        let (table, patterns) = set_system_to_patterns(&system).unwrap();
        let idx = InvertedIndex::build(&table);
        // Benefit sets survive the mapping.
        for (id, set) in system.iter() {
            let rows = idx.benefit(&patterns[id as usize]);
            prop_assert_eq!(rows, set.members().to_vec(), "set {}", id);
        }
        // Rebuild a set system from the mapped patterns and compare runs.
        let mut b = SetSystem::builder(system.num_elements());
        for (id, _) in system.iter() {
            b.add_set(
                idx.benefit(&patterns[id as usize]),
                system.cost(id).value(),
            );
        }
        let mapped = b.build().unwrap();
        let a = cwsc(&system, k, 0.6, &mut Stats::new());
        let c = cwsc(&mapped, k, 0.6, &mut Stats::new());
        prop_assert_eq!(a, c);
    }

    /// The inverted index agrees with a full scan for arbitrary patterns.
    #[test]
    fn index_agrees_with_scan(table in arb_table(), pat_vals in proptest::collection::vec(proptest::option::of(0u8..4), 1..=3)) {
        let idx = InvertedIndex::build(&table);
        // Build a pattern of matching arity (value ids may be absent from
        // the dictionary; the index must return empty then).
        let pattern = Pattern::new(
            (0..table.num_attrs())
                .map(|a| pat_vals.get(a).copied().flatten().map(u32::from))
                .collect(),
        );
        let valid = pattern
            .values()
            .iter()
            .enumerate()
            .all(|(a, v)| v.is_none_or(|v| (v as usize) < table.dictionary(a).len()));
        let by_index = idx.benefit(&pattern);
        if valid {
            let by_scan: Vec<u32> = (0..table.num_rows() as u32)
                .filter(|&r| pattern.matches(&table, r))
                .collect();
            prop_assert_eq!(by_index, by_scan);
        } else {
            prop_assert!(by_index.is_empty());
        }
    }
}
