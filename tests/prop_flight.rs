//! Property tests for the flight recorder's causal trace (DESIGN.md §13).
//!
//! The contract under test: for *any* instance and tick budget, a solve
//! with a [`FlightRecorder`] attached under `Threads(4)` reconstructs a
//! causal tree whose [`CausalNode::normalized`] form is *identical* to
//! the serial `Threads(1)` tree — same span names, nesting, counts, and
//! deterministic event tallies — and both recorders latch the same
//! deterministic trace id. The dump is always line-oriented JSON, one
//! object per line, even when the solve degrades or (under
//! `fault-inject`) panics.

use proptest::prelude::*;
use scwsc::prelude::*;
use scwsc::sets::algorithms::cmc_within;
use scwsc::sets::telemetry::pack_k_target;
use scwsc::sets::{
    coverage_target, Deadline, EngineError, FlightRecorder, SolveOutcome, ThreadPool, Threads,
    TraceId,
};

/// A random small set system that always contains a universe set, so
/// every instance is feasible and the solve reaches its main loop.
fn arb_system() -> impl Strategy<Value = SetSystem> {
    (2usize..=12, 1usize..=10).prop_flat_map(|(n, sets)| {
        let set = (
            proptest::collection::btree_set(0u32..n as u32, 1..=n),
            0u32..50,
        );
        proptest::collection::vec(set, sets).prop_map(move |sets| {
            let mut b = SetSystem::builder(n);
            for (members, cost) in sets {
                b.add_set(members, f64::from(cost));
            }
            b.add_universe_set(60.0);
            b.build().unwrap()
        })
    })
}

/// Runs CMC on `threads` workers with a fresh recorder attached and
/// returns both the outcome and the recorder.
fn recorded_cmc(
    system: &SetSystem,
    params: &CmcParams,
    threads: Threads,
    ticks: u64,
) -> (
    Result<SolveOutcome<scwsc::sets::algorithms::CmcOutcome>, EngineError>,
    FlightRecorder,
) {
    let pool = ThreadPool::new(threads);
    let deadline = Deadline::unbounded().with_tick_budget(ticks);
    let mut flight = FlightRecorder::new();
    let outcome = cmc_within(system, params, &pool, &deadline, &mut flight);
    (outcome, flight)
}

/// Asserts the dump's line discipline: at least the header and the
/// trailing causal-tree line, every line one JSON object.
fn check_dump(flight: &FlightRecorder) {
    let mut buf = Vec::new();
    flight.write_dump(&mut buf).expect("dump to memory");
    let text = String::from_utf8(buf).expect("dump is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "header + causal tree at minimum");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "every dump line is a JSON object: {line:?}"
        );
    }
    assert!(
        lines[0].starts_with("{\"flight\":\"scwsc\",\"version\":1,"),
        "header identifies the format: {:?}",
        lines[0]
    );
    assert!(
        lines.last().unwrap().starts_with("{\"causal_tree\":"),
        "dump ends with the reconstructed tree"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Acceptance property: the normalized causal tree reconstructed
    /// from a `Threads(4)` run equals the serial `Threads(1)` tree, and
    /// both latch the deterministic trace id minted at the entry point.
    #[test]
    fn cmc_causal_tree_is_thread_count_invariant(
        system in arb_system(),
        k in 1usize..=4,
        coverage in 0.1f64..=1.0,
        ticks in 0u64..150,
    ) {
        let params = CmcParams::classic(k, coverage, 0.5);
        let (serial, t1) = recorded_cmc(&system, &params, Threads::serial(), ticks);
        let (parallel, t4) = recorded_cmc(&system, &params, Threads::new(4), ticks);
        prop_assert_eq!(&serial, &parallel, "outcome is thread-count invariant");

        // Classic params discount the coverage target (Fig. 1 line 06),
        // so the mint's target word uses the discounted fraction.
        let target = coverage_target(
            system.num_elements(),
            params.coverage_fraction * CMC_COVERAGE_DISCOUNT,
        );
        if target > 0 {
            // The solve reached its entry mint: both recorders latched
            // the same deterministic id, reproducible from the inputs.
            let expect = TraceId::mint(
                "cmc",
                system.num_elements() as u64,
                pack_k_target(k, target),
            );
            prop_assert_eq!(t1.trace_id(), expect);
            prop_assert_eq!(t4.trace_id(), expect);
            prop_assert_eq!(t1.entry(), "cmc");
        }

        let n1 = t1.causal_tree().normalized();
        let n4 = t4.causal_tree().normalized();
        prop_assert_eq!(
            &n1, &n4,
            "normalized causal trees diverged:\nserial:\n{}\nparallel:\n{}",
            t1.causal_tree().render(),
            t4.causal_tree().render()
        );

        check_dump(&t1);
        check_dump(&t4);
    }

    /// The ring never loses the causal tree: even with a tiny capacity
    /// that forces eviction, the incrementally-maintained tree matches a
    /// recorder that kept everything, and the dump stays well-formed.
    #[test]
    fn wrapped_ring_keeps_the_full_causal_tree(
        system in arb_system(),
        k in 1usize..=4,
        ticks in 0u64..150,
    ) {
        let params = CmcParams::classic(k, 0.8, 0.5);
        let pool = ThreadPool::new(Threads::serial());
        let run = |flight: &mut FlightRecorder| {
            let deadline = Deadline::unbounded().with_tick_budget(ticks);
            cmc_within(&system, &params, &pool, &deadline, flight)
        };
        let mut small = FlightRecorder::with_capacity(8);
        let mut big = FlightRecorder::new();
        prop_assert_eq!(run(&mut small), run(&mut big));
        // Normalized: the runs are separate executions, so raw wall-clock
        // seconds differ even though the structure cannot.
        prop_assert_eq!(
            small.causal_tree().normalized(),
            big.causal_tree().normalized()
        );
        check_dump(&small);
    }
}

#[cfg(feature = "fault-inject")]
mod faults {
    use super::*;
    use scwsc::sets::FaultPlan;

    /// A fixed feasible instance large enough to schedule several budget
    /// guesses, so guess-addressed faults actually fire.
    fn acceptance_system() -> SetSystem {
        let mut b = SetSystem::builder(12);
        for i in 0..12u32 {
            b.add_set([i], 1.0 + f64::from(i) * 0.25);
        }
        b.add_set(0..6u32, 2.5);
        b.add_universe_set(40.0);
        b.build().unwrap()
    }

    /// Acceptance test: a worker panic injected under `Threads(4)` is
    /// contained and retried, and the flight recorder still produces a
    /// parseable dump whose normalized tree matches the serial run under
    /// the same fault plan — the recorder survives the failure it exists
    /// to explain.
    #[test]
    fn faulted_parallel_tree_matches_faulted_serial_tree() {
        let system = acceptance_system();
        let params = CmcParams::classic(3, 0.75, 0.5);
        let run = |threads: Threads| {
            let pool = ThreadPool::new(threads);
            let deadline =
                Deadline::unbounded().with_fault_plan(FaultPlan::new().panic_guess_once(1));
            let mut flight = FlightRecorder::new();
            let outcome = cmc_within(&system, &params, &pool, &deadline, &mut flight);
            (outcome, flight)
        };
        let (serial, t1) = run(Threads::serial());
        let (parallel, t4) = run(Threads::new(4));
        assert_eq!(serial, parallel, "one-shot fault recovers identically");
        assert!(serial.expect("retry recovers").is_complete());
        assert_eq!(
            t1.causal_tree().normalized(),
            t4.causal_tree().normalized(),
            "faulted runs still reconstruct the same causal tree"
        );
        check_dump(&t1);
        check_dump(&t4);
    }

    /// A persistent fault fails the solve, but the recorder keeps the
    /// latched trace id and dumps cleanly — the post-mortem path.
    #[test]
    fn persistent_fault_still_dumps_with_latched_trace_id() {
        let system = acceptance_system();
        let params = CmcParams::classic(3, 0.75, 0.5);
        let pool = ThreadPool::new(Threads::new(4));
        let deadline = Deadline::unbounded().with_fault_plan(FaultPlan::new().fail_guess(1));
        let mut flight = FlightRecorder::new();
        let err = cmc_within(&system, &params, &pool, &deadline, &mut flight)
            .expect_err("persistent fault must fail");
        assert!(matches!(err, EngineError::Panicked(_)));
        let target = coverage_target(
            system.num_elements(),
            params.coverage_fraction * CMC_COVERAGE_DISCOUNT,
        );
        assert_eq!(
            flight.trace_id(),
            TraceId::mint(
                "cmc",
                system.num_elements() as u64,
                pack_k_target(3, target)
            ),
            "trace id latched before the fault"
        );
        assert!(!flight.is_empty(), "events recorded before the fault");
        check_dump(&flight);
    }
}
