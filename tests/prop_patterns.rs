//! Property tests for the optimized pattern algorithms (Figures 3–4) and
//! the future-work extensions on random tables.

use proptest::prelude::*;
use scwsc::prelude::*;
use scwsc::sets::incremental::IncrementalCover;

fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..=3, 1usize..=30).prop_flat_map(|(attrs, rows)| {
        let row = (proptest::collection::vec(0u8..5, attrs), 0u8..60);
        proptest::collection::vec(row, rows).prop_map(move |rows| {
            let names: Vec<String> = (0..attrs).map(|a| format!("a{a}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let mut b = Table::builder(&refs, "m");
            for (vals, measure) in rows {
                let svals: Vec<String> = vals.iter().map(|v| format!("v{v}")).collect();
                let srefs: Vec<&str> = svals.iter().map(String::as_str).collect();
                b.push_row(&srefs, f64::from(measure)).unwrap();
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Optimized CMC meets the Theorem 4 bounds on arbitrary tables, with
    /// both the classic and ε level schedules, and its cached totals pass
    /// the independent verifier.
    #[test]
    fn opt_cmc_theorem_bounds(
        table in arb_table(),
        k in 1usize..=4,
        coverage in 0.1f64..=1.0,
        eps in 0.5f64..=2.0,
    ) {
        let space = PatternSpace::new(&table, CostFn::Max);
        let classic = CmcParams::classic(k, coverage, 1.0);
        let sol = opt_cmc(&space, &classic, &mut Stats::new()).unwrap();
        sol.verify(&space);
        prop_assert!(sol.size() <= 5 * k);
        let target = coverage_target(table.num_rows(), coverage * CMC_COVERAGE_DISCOUNT);
        prop_assert!(sol.covered >= target, "covered {} < target {}", sol.covered, target);

        let eps_params = CmcParams::epsilon(k, coverage, 1.0, eps);
        let sol = opt_cmc(&space, &eps_params, &mut Stats::new()).unwrap();
        let bound = ((1.0 + eps) * k as f64).floor() as usize;
        prop_assert!(sol.size() <= bound.max(k));
        prop_assert!(sol.covered >= target);
    }

    /// Optimized CMC at the undiscounted target always reaches ⌈ŝ·n⌉ (the
    /// harness configuration), and never returns a pattern twice.
    #[test]
    fn opt_cmc_full_target_and_distinct_patterns(
        table in arb_table(),
        k in 1usize..=4,
        coverage in 0.1f64..=1.0,
    ) {
        let space = PatternSpace::new(&table, CostFn::Max);
        let params = CmcParams {
            discount_coverage: false,
            ..CmcParams::epsilon(k, coverage, 1.0, 1.0)
        };
        let sol = opt_cmc(&space, &params, &mut Stats::new()).unwrap();
        prop_assert!(sol.covered >= coverage_target(table.num_rows(), coverage));
        let mut seen = sol.patterns.clone();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), sol.patterns.len(), "duplicate pattern selected");
    }

    /// Both optimized algorithms are deterministic.
    #[test]
    fn optimized_algorithms_deterministic(table in arb_table(), k in 1usize..=4) {
        let space = PatternSpace::new(&table, CostFn::Max);
        let a = opt_cwsc(&space, k, 0.6, &mut Stats::new());
        let b = opt_cwsc(&space, k, 0.6, &mut Stats::new());
        prop_assert_eq!(a, b);
        let params = CmcParams::classic(k, 0.6, 1.0);
        let c = opt_cmc(&space, &params, &mut Stats::new());
        let d = opt_cmc(&space, &params, &mut Stats::new());
        prop_assert_eq!(c, d);
    }

    /// Every pattern an optimized solution returns is a real pattern of
    /// the table (non-empty benefit) with the arity of the table.
    #[test]
    fn solutions_contain_only_real_patterns(table in arb_table(), k in 1usize..=4) {
        let space = PatternSpace::new(&table, CostFn::Max);
        if let Ok(sol) = opt_cwsc(&space, k, 0.5, &mut Stats::new()) {
            for p in &sol.patterns {
                prop_assert_eq!(p.num_attrs(), table.num_attrs());
                prop_assert!(!space.benefit(p).is_empty(), "{}", p.display(&table));
            }
        }
    }

    /// The incremental maintainer preserves its invariant (coverage ≥
    /// target, size ≤ k) under arbitrary arrival sequences, provided a
    /// universal set exists.
    #[test]
    fn incremental_invariants(
        arrivals in proptest::collection::vec(proptest::collection::btree_set(0u32..5, 0..5), 1..60),
        k in 1usize..=3,
        coverage in 0.1f64..=1.0,
    ) {
        let costs = [3.0, 5.0, 2.0, 8.0, 4.0, 100.0];
        let universal = 5u32;
        let mut inc = IncrementalCover::new(&costs, k, coverage).unwrap();
        for sets in arrivals {
            let mut memberships: Vec<u32> = sets.into_iter().collect();
            memberships.push(universal);
            inc.push_element(&memberships).unwrap();
            prop_assert!(inc.covered() >= inc.target());
            prop_assert!(inc.solution().len() <= k);
        }
    }
}
