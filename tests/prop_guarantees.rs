//! Property tests for the theorem-level guarantees: solution size bounds,
//! coverage requirements, and the exact solver's optimality, on random
//! instances that always satisfy Definition 1 (universe set present).

use proptest::prelude::*;
use scwsc::prelude::*;
use scwsc::sets::algorithms::cmc::Levels;

fn arb_system() -> impl Strategy<Value = SetSystem> {
    (2usize..=14, 0usize..=12).prop_flat_map(|(n, sets)| {
        let set = (
            proptest::collection::btree_set(0u32..n as u32, 1..=n),
            0u32..100,
        );
        proptest::collection::vec(set, sets).prop_map(move |sets| {
            let mut b = SetSystem::builder(n);
            for (members, cost) in sets {
                b.add_set(members, f64::from(cost));
            }
            b.add_universe_set(120.0);
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CWSC always returns at most k sets meeting the full coverage
    /// requirement when a universe set exists, and the independent
    /// verifier agrees.
    #[test]
    fn cwsc_respects_definition1(
        system in arb_system(),
        k in 1usize..=6,
        coverage in 0.0f64..=1.0,
    ) {
        let sol = cwsc(&system, k, coverage, &mut Stats::new()).unwrap();
        let req = Requirements::new(&system, k, coverage);
        let v = verify(&system, &sol, req);
        prop_assert!(v.is_valid(), "{:?}", v);
    }

    /// Theorem 4: classic CMC returns at most 5k sets covering at least
    /// ⌈(1−1/e)·ŝ·n⌉ elements.
    #[test]
    fn cmc_classic_theorem4_bounds(
        system in arb_system(),
        k in 1usize..=5,
        coverage in 0.0f64..=1.0,
    ) {
        let params = CmcParams::classic(k, coverage, 1.0);
        let out = cmc(&system, &params, &mut Stats::new()).unwrap();
        prop_assert!(out.solution.size() <= 5 * k);
        let target = coverage_target(
            system.num_elements(),
            coverage * CMC_COVERAGE_DISCOUNT,
        );
        prop_assert!(out.solution.covered() >= target);
        // Budget reporting is consistent: every selected set fits it.
        for &id in out.solution.sets() {
            prop_assert!(system.cost(id).value() <= out.final_budget + 1e-9);
        }
    }

    /// Theorem 5: the ε-variant returns at most (1+ε)k sets.
    #[test]
    fn cmc_epsilon_theorem5_size(
        system in arb_system(),
        k in 1usize..=5,
        eps in 0.25f64..=3.0,
    ) {
        let params = CmcParams::epsilon(k, 0.8, 1.0, eps);
        let out = cmc(&system, &params, &mut Stats::new()).unwrap();
        let bound = ((1.0 + eps) * k as f64).floor() as usize;
        prop_assert!(
            out.solution.size() <= bound.max(k),
            "{} sets for k={} eps={}",
            out.solution.size(), k, eps
        );
    }

    /// Level partitions: every cost at or below the budget lands in
    /// exactly one level; costs above the budget land in none; quotas sum
    /// within the schedule's bound.
    #[test]
    fn level_partition_is_total_below_budget(
        budget in 0.5f64..1000.0,
        k in 1usize..=32,
        cost in 0.0f64..2000.0,
    ) {
        let levels = Levels::build(LevelSchedule::Classic, budget, k);
        match levels.level_of(cost) {
            Some(level) => {
                prop_assert!(cost <= budget + 1e-9);
                prop_assert!(level < levels.len());
            }
            None => prop_assert!(cost > budget),
        }
        prop_assert!(levels.max_selections() <= 5 * k);
    }

    /// The exact solver never costs more than any greedy solution for the
    /// same (k, coverage), and its solutions verify.
    #[test]
    fn exact_is_a_lower_bound(
        system in arb_system(),
        k in 1usize..=4,
        coverage in 0.0f64..=1.0,
    ) {
        let opt = exact_optimal(&system, k, coverage).unwrap();
        let req = Requirements::new(&system, k, coverage);
        prop_assert!(verify(&system, &opt, req).is_valid());
        let greedy = cwsc(&system, k, coverage, &mut Stats::new()).unwrap();
        prop_assert!(opt.total_cost() <= greedy.total_cost());
    }

    /// Weighted set cover (no size bound) never costs more than CWSC with
    /// a size bound — the size constraint is what costs money.
    #[test]
    fn size_bound_never_decreases_cost(
        system in arb_system(),
        k in 1usize..=5,
        coverage in 0.0f64..=1.0,
    ) {
        let unbounded = greedy_weighted_set_cover(&system, coverage, &mut Stats::new()).unwrap();
        if let Ok(bounded) = cwsc(&system, k, coverage, &mut Stats::new()) {
            // Both are greedy heuristics, so this is not a theorem — but
            // the *optimal* unbounded cost is a lower bound; use the exact
            // solver with k = number of sets as the unbounded optimum.
            let opt_unbounded = exact_optimal(&system, system.num_sets(), coverage).unwrap();
            prop_assert!(opt_unbounded.total_cost() <= bounded.total_cost());
            // And sanity: the greedy unbounded solution meets coverage.
            let req = Requirements::new(&system, unbounded.size().max(1), coverage);
            prop_assert!(verify(&system, &unbounded, req).is_valid());
        }
    }

    /// Budgeted max coverage respects its budget.
    #[test]
    fn budgeted_respects_budget(system in arb_system(), budget in 0.0f64..300.0) {
        let sol = budgeted_max_coverage(&system, budget, None, &mut Stats::new());
        prop_assert!(sol.total_cost().value() <= budget + 1e-9);
    }
}
