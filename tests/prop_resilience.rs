//! Property tests for the resilient solve engine (DESIGN.md §12).
//!
//! The contract under test: for *any* instance, deadline, and fault
//! schedule, every deadline-aware solver returns a structured outcome —
//! `Ok(Complete)`, `Ok(Degraded)` with a certificate that independently
//! verifies, or `Err(Solve | Panicked)` — and never panics or hangs.
//! In tick-deterministic mode the full outcome is identical for
//! `Threads(1)` and `Threads(4)`.

use proptest::prelude::*;
use scwsc::patterns::{
    opt_cmc_within, opt_cwsc_within, verify_certificate_in, CostFn, PatternSpace, Table,
};
use scwsc::prelude::*;
use scwsc::sets::algorithms::{cmc_within, cwsc_within};
use scwsc::sets::{verify_certificate, Deadline, EngineError, SolveOutcome, ThreadPool, Threads};

/// A random small set system that always contains a universe set, so
/// every instance is feasible and `Err(Solve)` outcomes are rare.
fn arb_system() -> impl Strategy<Value = SetSystem> {
    (2usize..=12, 1usize..=10).prop_flat_map(|(n, sets)| {
        let set = (
            proptest::collection::btree_set(0u32..n as u32, 1..=n),
            0u32..50,
        );
        proptest::collection::vec(set, sets).prop_map(move |sets| {
            let mut b = SetSystem::builder(n);
            for (members, cost) in sets {
                b.add_set(members, f64::from(cost));
            }
            b.add_universe_set(60.0);
            b.build().unwrap()
        })
    })
}

/// A random small table for the pattern-lattice solvers.
fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..=3, 1usize..=16).prop_flat_map(|(attrs, rows)| {
        let row = (proptest::collection::vec(0u8..4, attrs), 0u8..40);
        proptest::collection::vec(row, rows).prop_map(move |rows| {
            let names: Vec<String> = (0..attrs).map(|a| format!("a{a}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let mut b = Table::builder(&refs, "m");
            for (vals, measure) in rows {
                let svals: Vec<String> = vals.iter().map(|v| format!("v{v}")).collect();
                let srefs: Vec<&str> = svals.iter().map(String::as_str).collect();
                b.push_row(&srefs, f64::from(measure)).unwrap();
            }
            b.build()
        })
    })
}

/// Asserts the engine contract on a set-system outcome: complete values
/// are taken at face value (covered elsewhere by the algorithm property
/// tests), degraded certificates must verify against the partial
/// solution, and `Panicked` must never appear without a fault plan.
fn check_set_outcome(
    system: &SetSystem,
    partial: &Solution,
    outcome: &SolveOutcome<impl std::fmt::Debug>,
) {
    if let Some(cert) = outcome.certificate() {
        let check = verify_certificate(system, partial, cert);
        assert!(
            check.is_valid(),
            "certificate failed verification: {check:?} vs {cert:?}"
        );
        assert!(cert.ticks > 0, "an expiry consumes at least one tick");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CMC under an arbitrary tick budget: structured outcome, verified
    /// certificate, no panic, no hang.
    #[test]
    fn cmc_tick_budget_is_structured(
        system in arb_system(),
        k in 1usize..=4,
        coverage in 0.1f64..=1.0,
        ticks in 0u64..200,
    ) {
        let params = CmcParams::classic(k, coverage, 0.5);
        let pool = ThreadPool::new(Threads::serial());
        let deadline = Deadline::unbounded().with_tick_budget(ticks);
        match cmc_within(&system, &params, &pool, &deadline, &mut NoopObserver) {
            Ok(outcome) => {
                check_set_outcome(&system, &outcome.value().solution, &outcome);
            }
            Err(EngineError::Solve(_)) => {}
            Err(EngineError::Panicked(msg)) => {
                prop_assert!(false, "panic without a fault plan: {msg}");
            }
        }
    }

    /// CWSC under an arbitrary tick budget: same contract.
    #[test]
    fn cwsc_tick_budget_is_structured(
        system in arb_system(),
        k in 1usize..=4,
        coverage in 0.1f64..=1.0,
        ticks in 0u64..100,
    ) {
        let pool = ThreadPool::new(Threads::serial());
        let deadline = Deadline::unbounded().with_tick_budget(ticks);
        match cwsc_within(&system, k, coverage, &pool, &deadline, &mut NoopObserver) {
            Ok(outcome) => {
                check_set_outcome(&system, outcome.value(), &outcome);
            }
            Err(EngineError::Solve(_)) => {}
            Err(EngineError::Panicked(msg)) => {
                prop_assert!(false, "panic without a fault plan: {msg}");
            }
        }
    }

    /// Determinism contract: a tick-addressed deadline disables
    /// speculation, so `Threads(1)` and `Threads(4)` produce *identical*
    /// outcomes — same classification, same partial, same tick count.
    #[test]
    fn cmc_outcome_is_thread_count_invariant(
        system in arb_system(),
        k in 1usize..=4,
        coverage in 0.1f64..=1.0,
        ticks in 0u64..120,
    ) {
        let params = CmcParams::classic(k, coverage, 0.5);
        let serial = {
            let pool = ThreadPool::new(Threads::serial());
            let deadline = Deadline::unbounded().with_tick_budget(ticks);
            cmc_within(&system, &params, &pool, &deadline, &mut NoopObserver)
        };
        let parallel = {
            let pool = ThreadPool::new(Threads::new(4));
            let deadline = Deadline::unbounded().with_tick_budget(ticks);
            cmc_within(&system, &params, &pool, &deadline, &mut NoopObserver)
        };
        prop_assert_eq!(serial, parallel);
    }

    /// Same determinism contract for CWSC's parallel benefit scans.
    #[test]
    fn cwsc_outcome_is_thread_count_invariant(
        system in arb_system(),
        k in 1usize..=4,
        ticks in 0u64..60,
    ) {
        let serial = {
            let pool = ThreadPool::new(Threads::serial());
            let deadline = Deadline::unbounded().with_tick_budget(ticks);
            cwsc_within(&system, k, 0.7, &pool, &deadline, &mut NoopObserver)
        };
        let parallel = {
            let pool = ThreadPool::new(Threads::new(4));
            let deadline = Deadline::unbounded().with_tick_budget(ticks);
            cwsc_within(&system, k, 0.7, &pool, &deadline, &mut NoopObserver)
        };
        prop_assert_eq!(serial, parallel);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pattern-lattice CWSC honors the same contract, verified by the
    /// lattice-side certificate checker.
    #[test]
    fn opt_cwsc_tick_budget_is_structured(
        table in arb_table(),
        k in 1usize..=4,
        ticks in 0u64..60,
    ) {
        let space = PatternSpace::new(&table, CostFn::Max);
        let deadline = Deadline::unbounded().with_tick_budget(ticks);
        match opt_cwsc_within(&space, k, 0.6, &deadline, &mut NoopObserver) {
            Ok(SolveOutcome::Complete(_)) => {}
            Ok(SolveOutcome::Degraded(d)) => {
                let check = verify_certificate_in(&space, &d.partial, &d.certificate);
                prop_assert!(check.is_valid(), "{check:?} vs {:?}", d.certificate);
            }
            Err(EngineError::Solve(_)) => {}
            Err(EngineError::Panicked(msg)) => {
                prop_assert!(false, "panic without a fault plan: {msg}");
            }
        }
    }

    /// The pattern-lattice CMC honors the same contract.
    #[test]
    fn opt_cmc_tick_budget_is_structured(
        table in arb_table(),
        k in 1usize..=3,
        ticks in 0u64..60,
    ) {
        let space = PatternSpace::new(&table, CostFn::Max);
        let params = CmcParams::classic(k, 0.6, 0.5);
        let pool = ThreadPool::new(Threads::serial());
        let deadline = Deadline::unbounded().with_tick_budget(ticks);
        match opt_cmc_within(&space, &params, &pool, &deadline, &mut NoopObserver) {
            Ok(SolveOutcome::Complete(_)) => {}
            Ok(SolveOutcome::Degraded(d)) => {
                let check = verify_certificate_in(&space, &d.partial, &d.certificate);
                prop_assert!(check.is_valid(), "{check:?} vs {:?}", d.certificate);
            }
            Err(EngineError::Solve(_)) => {}
            Err(EngineError::Panicked(msg)) => {
                prop_assert!(false, "panic without a fault plan: {msg}");
            }
        }
    }
}

#[cfg(feature = "fault-inject")]
mod faults {
    use super::*;
    use scwsc::sets::FaultPlan;

    /// A fixed feasible instance for the acceptance tests: singletons of
    /// rising cost, one cheap medium set, and the mandatory universe set.
    fn acceptance_system() -> SetSystem {
        let mut b = SetSystem::builder(12);
        for i in 0..12u32 {
            b.add_set([i], 1.0 + f64::from(i) * 0.25);
        }
        b.add_set(0..6u32, 2.5);
        b.add_universe_set(40.0);
        b.build().unwrap()
    }

    /// Acceptance test: a worker panic injected into the first budget
    /// guess under a 4-thread speculative window is contained, retried
    /// once serially, and the solve completes — with the retry visible in
    /// the metrics. Fails on the pre-engine tree (the panic escaped).
    #[test]
    fn injected_guess_panic_recovers_with_one_retry() {
        let system = acceptance_system();
        let params = CmcParams::classic(3, 0.75, 0.5);
        let pool = ThreadPool::new(Threads::new(4));
        let deadline = Deadline::unbounded().with_fault_plan(FaultPlan::new().panic_guess_once(1));
        let mut metrics = MetricsRecorder::new();
        let outcome = cmc_within(&system, &params, &pool, &deadline, &mut metrics)
            .expect("one-shot fault must not fail the solve");
        assert!(outcome.is_complete(), "retry recovers: {outcome:?}");
        assert_eq!(metrics.guesses_retried, 1, "exactly one contained retry");
    }

    /// A persistent fault (the retry panics too) surfaces as a structured
    /// `EngineError::Panicked`, never as an escaped panic.
    #[test]
    fn persistent_guess_fault_reports_engine_error() {
        let system = acceptance_system();
        let params = CmcParams::classic(3, 0.75, 0.5);
        for threads in [Threads::serial(), Threads::new(4)] {
            let pool = ThreadPool::new(threads);
            let deadline = Deadline::unbounded().with_fault_plan(FaultPlan::new().fail_guess(1));
            let err = cmc_within(&system, &params, &pool, &deadline, &mut NoopObserver)
                .expect_err("persistent fault must fail");
            match err {
                EngineError::Panicked(msg) => {
                    assert!(msg.contains("guess 1"), "payload preserved: {msg}");
                }
                other => panic!("expected Panicked, got {other:?}"),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Under *any* seeded fault schedule plus an arbitrary tick
        /// budget, CMC still returns a structured outcome: contained
        /// panics, verified certificates, no hangs — and the outcome is
        /// identical for `Threads(1)` and `Threads(4)` (tick-addressed
        /// schedules force serial guessing; guess-addressed schedules
        /// fire on thread-count-invariant guess indices).
        #[test]
        fn seeded_faults_stay_structured_and_thread_invariant(
            system in arb_system(),
            k in 1usize..=4,
            seed in 0u64..1024,
            ticks in 1u64..120,
        ) {
            let params = CmcParams::classic(k, 0.8, 0.5);
            let run = |threads: Threads| {
                let pool = ThreadPool::new(threads);
                let deadline = Deadline::unbounded()
                    .with_tick_budget(ticks)
                    .with_fault_plan(FaultPlan::from_seed(seed));
                cmc_within(&system, &params, &pool, &deadline, &mut NoopObserver)
            };
            let serial = run(Threads::serial());
            if let Ok(outcome) = &serial {
                check_set_outcome(&system, &outcome.value().solution, outcome);
            }
            prop_assert_eq!(&serial, &run(Threads::new(4)));
        }

        /// Same contract for CWSC: the whole round is contained, so a
        /// mid-round injected panic becomes `Err(Panicked)` and an
        /// injected cancellation becomes a verified degrade.
        #[test]
        fn cwsc_seeded_faults_stay_structured(
            system in arb_system(),
            k in 1usize..=4,
            seed in 0u64..1024,
        ) {
            let pool = ThreadPool::new(Threads::serial());
            let deadline = Deadline::unbounded()
                .with_fault_plan(FaultPlan::from_seed(seed));
            match cwsc_within(&system, k, 0.7, &pool, &deadline, &mut NoopObserver) {
                Ok(outcome) => {
                    if let Some(cert) = outcome.certificate() {
                        let check = verify_certificate(&system, outcome.value(), cert);
                        prop_assert!(check.is_valid(), "{check:?}");
                    }
                }
                Err(EngineError::Solve(_) | EngineError::Panicked(_)) => {}
            }
        }
    }
}
