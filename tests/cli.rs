//! End-to-end test of the `scwsc_solve` CLI binary: write a CSV, solve it
//! from the command line, and check the printed summary.

use scwsc::data::csv::write_table;
use scwsc::data::entities_table;
use std::path::PathBuf;
use std::process::Command;

/// Locates the compiled `scwsc_solve` binary next to the test binary.
fn solver_path() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // test binary name
    path.pop(); // deps/
    path.push("scwsc_solve");
    path
}

fn solver_available() -> bool {
    solver_path().exists()
}

#[test]
fn solve_entities_csv_with_cwsc() {
    if !solver_available() {
        eprintln!("scwsc_solve not built (run `cargo build --workspace`); skipping");
        return;
    }
    let dir = std::env::temp_dir().join("scwsc_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("entities.csv");
    write_table(&entities_table(), &csv).unwrap();

    let output = Command::new(solver_path())
        .args([
            "--csv",
            csv.to_str().unwrap(),
            "--k",
            "2",
            "--coverage",
            "0.5625", // 9/16
            "--algorithm",
            "cwsc",
        ])
        .output()
        .expect("solver runs");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    // The §V-B walkthrough: P16 then P3, total 28, covering 10.
    assert!(stdout.contains("2 patterns"), "{stdout}");
    assert!(stdout.contains("total weight 28"), "{stdout}");
    assert!(stdout.contains("{Type=B, Location=ALL}"), "{stdout}");
    assert!(stdout.contains("{Type=A, Location=North}"), "{stdout}");
    std::fs::remove_file(&csv).ok();
}

#[test]
fn solve_generated_trace_with_cmc() {
    if !solver_available() {
        eprintln!("scwsc_solve not built; skipping");
        return;
    }
    let output = Command::new(solver_path())
        .args(["--rows", "800", "--k", "5", "--coverage", "0.3", "--algorithm", "cmc"])
        .output()
        .expect("solver runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("patterns, total weight"), "{stdout}");
    assert!(stdout.contains("protocol="), "{stdout}");
}

#[test]
fn rejects_unknown_algorithm() {
    if !solver_available() {
        eprintln!("scwsc_solve not built; skipping");
        return;
    }
    let output = Command::new(solver_path())
        .args(["--rows", "100", "--algorithm", "magic"])
        .output()
        .expect("solver runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");
}
