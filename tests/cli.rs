//! End-to-end test of the `scwsc_solve` CLI binary: write a CSV, solve it
//! from the command line, and check the printed summary.

use scwsc::data::csv::write_table;
use scwsc::data::entities_table;
use std::path::PathBuf;
use std::process::Command;

/// Locates the compiled `scwsc_solve` binary next to the test binary.
fn solver_path() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // test binary name
    path.pop(); // deps/
    path.push("scwsc_solve");
    path
}

fn solver_available() -> bool {
    solver_path().exists()
}

#[test]
fn solve_entities_csv_with_cwsc() {
    if !solver_available() {
        eprintln!("scwsc_solve not built (run `cargo build --workspace`); skipping");
        return;
    }
    let dir = std::env::temp_dir().join("scwsc_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("entities.csv");
    write_table(&entities_table(), &csv).unwrap();

    let output = Command::new(solver_path())
        .args([
            "--csv",
            csv.to_str().unwrap(),
            "--k",
            "2",
            "--coverage",
            "0.5625", // 9/16
            "--algorithm",
            "cwsc",
        ])
        .output()
        .expect("solver runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    // The §V-B walkthrough: P16 then P3, total 28, covering 10.
    assert!(stdout.contains("2 patterns"), "{stdout}");
    assert!(stdout.contains("total weight 28"), "{stdout}");
    assert!(stdout.contains("{Type=B, Location=ALL}"), "{stdout}");
    assert!(stdout.contains("{Type=A, Location=North}"), "{stdout}");
    std::fs::remove_file(&csv).ok();
}

#[test]
fn solve_generated_trace_with_cmc() {
    if !solver_available() {
        eprintln!("scwsc_solve not built; skipping");
        return;
    }
    let output = Command::new(solver_path())
        .args([
            "--rows",
            "800",
            "--k",
            "5",
            "--coverage",
            "0.3",
            "--algorithm",
            "cmc",
        ])
        .output()
        .expect("solver runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("patterns, total weight"), "{stdout}");
    assert!(stdout.contains("protocol="), "{stdout}");
}

/// Pulls `"key":value` out of a JSONL line (numbers only).
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn trace_jsonl_aggregates_match_printed_stats() {
    if !solver_available() {
        eprintln!("scwsc_solve not built; skipping");
        return;
    }
    let dir = std::env::temp_dir().join("scwsc_cli_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");
    let output = Command::new(solver_path())
        .args([
            "--rows",
            "600",
            "--k",
            "5",
            "--coverage",
            "0.3",
            "--algorithm",
            "cwsc",
            "--trace-jsonl",
            trace.to_str().unwrap(),
            "--metrics",
        ])
        .output()
        .expect("solver runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    let stdout = String::from_utf8_lossy(&output.stdout);

    // Aggregate the trace by hand: every line is one {"t":..,"event":..}.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let mut benefit_sum = 0u64;
    let mut selections = 0u64;
    let mut guesses = 0u64;
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object: {line}"
        );
        assert!(line.contains("\"t\":"), "missing timestamp: {line}");
        assert!(line.contains("\"event\":\""), "missing event: {line}");
        if line.contains("\"event\":\"benefit_computed\"") {
            benefit_sum += json_u64(line, "count").expect("count field");
        } else if line.contains("\"event\":\"set_selected\"") {
            selections += 1;
        } else if line.contains("\"event\":\"guess_started\"") {
            guesses += 1;
        }
    }

    // The stderr summary is the Stats view of the same run.
    let summary = stderr
        .lines()
        .find(|l| l.starts_with("considered "))
        .expect("stats summary printed");
    assert_eq!(
        summary,
        &format!("considered {benefit_sum} patterns in {guesses} budget guess(es)"),
        "trace aggregate disagrees with printed stats"
    );
    // The selection events are the printed solution, one per pattern.
    assert!(
        stdout.contains(&format!("{selections} patterns")),
        "{selections} set_selected events vs: {stdout}"
    );
    // --metrics printed the aggregated view too.
    assert!(stdout.contains("== metrics =="), "{stdout}");
    assert!(stdout.contains("benefits computed"), "{stdout}");
    assert!(stdout.contains("total"), "{stdout}"); // the per-phase table
    std::fs::remove_file(&trace).ok();
}

#[test]
fn rejects_unknown_algorithm() {
    if !solver_available() {
        eprintln!("scwsc_solve not built; skipping");
        return;
    }
    let output = Command::new(solver_path())
        .args(["--rows", "100", "--algorithm", "magic"])
        .output()
        .expect("solver runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");
}
