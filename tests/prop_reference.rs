//! Differential testing against literal pseudocode transcriptions.
//!
//! The production implementations maintain marginal benefits incrementally
//! (element→set incidence lists, candidate pools, lazy heaps). These
//! reference implementations instead transcribe Figures 1–2 line by line
//! with naive O(m·n) set arithmetic, and the property tests check both
//! agree exactly on random instances.

use proptest::prelude::*;
use scwsc::prelude::*;
use std::collections::BTreeSet;

/// Literal Fig. 2: CWSC with explicit `MBen` sets.
fn reference_cwsc(system: &SetSystem, k: usize, coverage: f64) -> Result<Vec<u32>, ()> {
    let n = system.num_elements();
    let target = coverage_target(n, coverage);
    if target == 0 {
        return Ok(Vec::new());
    }
    // MBen(s) as explicit sets; None marks sets removed from C.
    let mut mben: Vec<Option<BTreeSet<u32>>> = (0..system.num_sets() as u32)
        .map(|id| Some(system.members(id).iter().copied().collect()))
        .collect();
    let mut solution = Vec::new();
    let mut rem = target as i64;
    for i in (1..=k).rev() {
        // argmax MGain over sets with |MBen| >= rem/i, with the crate's
        // canonical tie-breaking (gain desc, mben desc, cost asc, id asc).
        let mut q: Option<u32> = None;
        for id in 0..system.num_sets() as u32 {
            let Some(m) = &mben[id as usize] else {
                continue;
            };
            if (m.len() as i64) * i as i64 >= rem && !m.is_empty() {
                let better = match q {
                    None => true,
                    Some(b) => {
                        let mb = mben[b as usize].as_ref().unwrap();
                        let (ca, cb) = (system.cost(id).value(), system.cost(b).value());
                        (m.len() as f64 * cb)
                            .total_cmp(&(mb.len() as f64 * ca))
                            .then(m.len().cmp(&mb.len()))
                            .then(cb.total_cmp(&ca))
                            .then(b.cmp(&id))
                            .is_gt()
                    }
                };
                if better {
                    q = Some(id);
                }
            }
        }
        let Some(q) = q else { return Err(()) };
        let q_ben = mben[q as usize].take().unwrap();
        solution.push(q);
        rem -= q_ben.len() as i64;
        if rem <= 0 {
            return Ok(solution);
        }
        for slot in mben.iter_mut() {
            if let Some(m) = slot {
                for e in &q_ben {
                    m.remove(e);
                }
                if m.is_empty() {
                    *slot = None;
                }
            }
        }
    }
    Err(())
}

/// Literal greedy partial weighted set cover (pick max gain until target).
fn reference_wsc(system: &SetSystem, coverage: f64) -> Result<(Vec<u32>, f64), ()> {
    let n = system.num_elements();
    let target = coverage_target(n, coverage);
    let mut covered: BTreeSet<u32> = BTreeSet::new();
    let mut chosen: Vec<u32> = Vec::new();
    let mut total = 0.0;
    while covered.len() < target {
        let mut best: Option<(u32, usize)> = None;
        for id in 0..system.num_sets() as u32 {
            if chosen.contains(&id) {
                continue;
            }
            let mben = system
                .members(id)
                .iter()
                .filter(|e| !covered.contains(e))
                .count();
            if mben == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((b, b_mben)) => {
                    let (ca, cb) = (system.cost(id).value(), system.cost(b).value());
                    (mben as f64 * cb)
                        .total_cmp(&(b_mben as f64 * ca))
                        .then(mben.cmp(&b_mben))
                        .then(cb.total_cmp(&ca))
                        .then(b.cmp(&id))
                        .is_gt()
                }
            };
            if better {
                best = Some((id, mben));
            }
        }
        let Some((q, _)) = best else { return Err(()) };
        for &e in system.members(q) {
            covered.insert(e);
        }
        chosen.push(q);
        total += system.cost(q).value();
    }
    Ok((chosen, total))
}

fn arb_system() -> impl Strategy<Value = SetSystem> {
    (2usize..=12, 0usize..=10).prop_flat_map(|(n, sets)| {
        let set = (
            proptest::collection::btree_set(0u32..n as u32, 1..=n),
            0u32..60,
        );
        proptest::collection::vec(set, sets).prop_map(move |sets| {
            let mut b = SetSystem::builder(n);
            for (members, cost) in sets {
                b.add_set(members, f64::from(cost));
            }
            b.add_universe_set(80.0);
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn cwsc_matches_literal_pseudocode(
        system in arb_system(),
        k in 1usize..=6,
        coverage in 0.0f64..=1.0,
    ) {
        let fast = cwsc(&system, k, coverage, &mut Stats::new());
        let slow = reference_cwsc(&system, k, coverage);
        match (fast, slow) {
            (Ok(f), Ok(s)) => prop_assert_eq!(f.sets().to_vec(), s),
            (Err(SolveError::NoSolution), Err(())) => {}
            (f, s) => prop_assert!(false, "fast {:?} vs reference {:?}", f, s),
        }
    }

    #[test]
    fn wsc_baseline_matches_literal_pseudocode(
        system in arb_system(),
        coverage in 0.0f64..=1.0,
    ) {
        let fast = greedy_weighted_set_cover(&system, coverage, &mut Stats::new());
        let slow = reference_wsc(&system, coverage);
        match (fast, slow) {
            (Ok(f), Ok((sets, total))) => {
                prop_assert_eq!(f.sets().to_vec(), sets);
                prop_assert!((f.total_cost().value() - total).abs() < 1e-9);
            }
            (Err(SolveError::NoSolution), Err(())) => {}
            (f, s) => prop_assert!(false, "fast {:?} vs reference {:?}", f, s),
        }
    }
}
