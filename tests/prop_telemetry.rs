//! Property tests for the telemetry layer: on random set systems, the
//! event stream any [`Observer`] sees is consistent with the legacy
//! [`Stats`] counters, and every `guess_started` comes with the level
//! schedule the guess actually built — whose quotas respect the `5k`
//! (classic) / `(1+ε)k` (epsilon) size bounds of Theorems 4–5.

use proptest::prelude::*;
use scwsc::prelude::*;
use scwsc::sets::algorithms::cmc::Levels;
use scwsc::sets::algorithms::cmc_on;
use scwsc::sets::telemetry::Observer;
use scwsc::sets::{Fanout, SolveWindows, ThreadPool, Threads};

/// Minimal event recorder: exactly what the properties below inspect.
#[derive(Default)]
struct Recorder {
    benefit_sum: u64,
    selections: u64,
    budgets: Vec<Option<f64>>,
    /// One `(level, allowance)` list per `guess_started`.
    schedules: Vec<Vec<(usize, usize)>>,
}

impl Observer for Recorder {
    fn guess_started(&mut self, budget: Option<f64>) {
        self.budgets.push(budget);
        self.schedules.push(Vec::new());
    }

    fn level_entered(&mut self, level: usize, allowance: usize) {
        self.schedules
            .last_mut()
            .expect("level_entered before any guess_started")
            .push((level, allowance));
    }

    fn set_selected(&mut self, _id: u64, _marginal_benefit: u64, _cost: f64) {
        self.selections += 1;
    }

    fn benefit_computed(&mut self, count: u64) {
        self.benefit_sum += count;
    }
}

fn arb_system() -> impl Strategy<Value = SetSystem> {
    (2usize..=14, 0usize..=12).prop_flat_map(|(n, sets)| {
        let set = (
            proptest::collection::btree_set(0u32..n as u32, 1..=n),
            0u32..100,
        );
        proptest::collection::vec(set, sets).prop_map(move |sets| {
            let mut b = SetSystem::builder(n);
            for (members, cost) in sets {
                b.add_set(members, f64::from(cost));
            }
            b.add_universe_set(120.0);
            b.build().unwrap()
        })
    })
}

/// Runs `solve` with `Stats` and a [`Recorder`] fanned out side by side.
fn record<R>(solve: impl FnOnce(&mut Fanout<'_>) -> R) -> (R, Stats, Recorder) {
    let mut stats = Stats::new();
    let mut rec = Recorder::default();
    let result = {
        let mut obs = Fanout::new();
        obs.attach(&mut stats).attach(&mut rec);
        solve(&mut obs)
    };
    (result, stats, rec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// CWSC: the event stream reproduces the Stats counters, and the
    /// single round appears as exactly one budget-less guess.
    #[test]
    fn cwsc_events_match_stats(
        system in arb_system(),
        k in 1usize..=6,
        coverage in 0.0f64..=1.0,
    ) {
        let (result, stats, rec) =
            record(|obs| cwsc(&system, k, coverage, obs));
        prop_assert!(result.is_ok());
        prop_assert_eq!(rec.benefit_sum, stats.considered);
        prop_assert_eq!(rec.selections, u64::from(stats.selections));
        prop_assert_eq!(rec.budgets.len(), stats.budget_guesses as usize);
        prop_assert!(rec.budgets.len() <= 1, "CWSC is single-round");
        prop_assert!(rec.budgets.iter().all(Option::is_none));
        prop_assert!(rec.schedules.iter().all(Vec::is_empty));
    }

    /// Classic CMC: every guess carries a budget, its reported level
    /// schedule is exactly `Levels::build` for that budget, and the quotas
    /// sum within Theorem 4's `5k`.
    #[test]
    fn cmc_classic_schedules_respect_5k(
        system in arb_system(),
        k in 1usize..=5,
        coverage in 0.0f64..=1.0,
    ) {
        let params = CmcParams::classic(k, coverage, 1.0);
        let (result, stats, rec) =
            record(|obs| cmc(&system, &params, obs));
        prop_assert!(result.is_ok());
        prop_assert_eq!(rec.benefit_sum, stats.considered);
        prop_assert_eq!(rec.selections, u64::from(stats.selections));
        prop_assert_eq!(rec.budgets.len(), stats.budget_guesses as usize);
        for (budget, schedule) in rec.budgets.iter().zip(&rec.schedules) {
            let budget = budget.expect("CMC guesses carry a budget");
            let levels = Levels::build(params.schedule, budget, k);
            let expected: Vec<(usize, usize)> =
                (0..levels.len()).map(|l| (l, levels.quota(l))).collect();
            prop_assert_eq!(schedule, &expected);
            let total: usize = schedule.iter().map(|&(_, q)| q).sum();
            prop_assert!(total <= 5 * k, "{total} quota slots for k={k}");
        }
    }

    /// ε-schedule CMC: per-guess quotas sum within Theorem 5's `(1+ε)k`.
    #[test]
    fn cmc_epsilon_schedules_respect_eps_bound(
        system in arb_system(),
        k in 1usize..=5,
        eps in 0.25f64..=3.0,
    ) {
        let params = CmcParams::epsilon(k, 0.8, 1.0, eps);
        let (result, stats, rec) =
            record(|obs| cmc(&system, &params, obs));
        prop_assert!(result.is_ok());
        prop_assert_eq!(rec.budgets.len(), stats.budget_guesses as usize);
        let bound = (((1.0 + eps) * k as f64).floor() as usize).max(k);
        for (budget, schedule) in rec.budgets.iter().zip(&rec.schedules) {
            let budget = budget.expect("CMC guesses carry a budget");
            let levels = Levels::build(params.schedule, budget, k);
            let expected: Vec<(usize, usize)> =
                (0..levels.len()).map(|l| (l, levels.quota(l))).collect();
            prop_assert_eq!(schedule, &expected);
            let total: usize = schedule.iter().map(|&(_, q)| q).sum();
            prop_assert!(total <= bound, "{total} quota slots for k={k} eps={eps}");
        }
    }

    /// Sliding-window telemetry parity (DESIGN.md §16): feeding the same
    /// sequence of solves through [`SolveWindows`] yields bit-identical
    /// windowed counters, high-watermarks, and quantile histograms for
    /// `Threads(1)` and `Threads(4)` — including across window rollovers,
    /// because windows advance on solve-sequence boundaries, never wall
    /// clock, and the per-solve samples are deterministic counters.
    #[test]
    fn windowed_telemetry_is_thread_count_invariant(
        systems in proptest::collection::vec(arb_system(), 5..=8),
        k in 1usize..=5,
        coverage in 0.0f64..=1.0,
    ) {
        // A window smaller than the solve count forces rollovers.
        let window = 3;
        let mut serial = SolveWindows::with_window(window);
        let mut pooled = SolveWindows::with_window(window);
        let pool = ThreadPool::new(Threads::new(4));
        let params = CmcParams::classic(k, coverage, 1.0);
        for system in &systems {
            let r1 = {
                let mut obs = Fanout::new();
                obs.attach(&mut serial);
                cmc(system, &params, &mut obs)
            };
            let r2 = {
                let mut obs = Fanout::new();
                obs.attach(&mut pooled);
                cmc_on(system, &params, &pool, &mut obs)
            };
            prop_assert_eq!(r1.is_ok(), r2.is_ok());
        }
        prop_assert_eq!(serial.solves(), systems.len() as u64);
        prop_assert!(serial.rollovers() > 0, "windows rolled over");
        prop_assert_eq!(&serial, &pooled);
    }

    /// The optimized pattern-lattice CWSC reports the same invariants over
    /// its own event vocabulary: one budget-less guess, selections equal to
    /// the solution size, and Stats agreement.
    #[test]
    fn opt_cwsc_events_match_stats(rows in 30usize..120, k in 1usize..=5) {
        let table = scwsc::patterns::test_util::skewed_table(rows, 3, 4);
        let space = PatternSpace::new(&table, CostFn::Max);
        let (result, stats, rec) =
            record(|obs| opt_cwsc(&space, k, 0.5, obs));
        if let Ok(sol) = result {
            prop_assert_eq!(rec.selections as usize, sol.size());
        }
        prop_assert_eq!(rec.benefit_sum, stats.considered);
        prop_assert_eq!(rec.selections, u64::from(stats.selections));
        prop_assert!(rec.budgets.len() <= 1);
        prop_assert!(rec.budgets.iter().all(Option::is_none));
    }
}

/// Windowed parity must also hold when solves *degrade*: a fault-injected
/// tick budget forces the engine down the degradation ladder, and the
/// degraded-rate windows still come out bit-identical across thread
/// counts (tick-addressed deadlines are tick-deterministic by contract).
#[cfg(feature = "fault-inject")]
mod degraded_windows {
    use super::*;
    use scwsc::sets::algorithms::cmc_within;
    use scwsc::sets::{Deadline, FaultPlan};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn windowed_telemetry_parity_holds_for_degraded_solves(
            systems in proptest::collection::vec(arb_system(), 4..=6),
            k in 1usize..=4,
            ticks in 1u64..=12,
            cancel_at in 1u64..=20,
        ) {
            let window = 3;
            let mut serial = SolveWindows::with_window(window);
            let mut pooled = SolveWindows::with_window(window);
            let serial_pool = ThreadPool::new(Threads::serial());
            let quad_pool = ThreadPool::new(Threads::new(4));
            let params = CmcParams::classic(k, 0.9, 1.0);
            for system in &systems {
                let deadline = || {
                    Deadline::unbounded()
                        .with_tick_budget(ticks)
                        .with_fault_plan(FaultPlan::new().cancel_at_tick(cancel_at))
                };
                let r1 = {
                    let mut obs = Fanout::new();
                    obs.attach(&mut serial);
                    cmc_within(system, &params, &serial_pool, &deadline(), &mut obs)
                };
                let r2 = {
                    let mut obs = Fanout::new();
                    obs.attach(&mut pooled);
                    cmc_within(system, &params, &quad_pool, &deadline(), &mut obs)
                };
                prop_assert_eq!(r1.is_ok(), r2.is_ok());
            }
            prop_assert_eq!(&serial, &pooled);
        }
    }
}
