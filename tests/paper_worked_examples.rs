//! Every concrete number the paper derives from its running example
//! (Tables I–II, the introduction, and the Section V walkthroughs),
//! checked end to end through the public API.

use scwsc::data::{entities_table, table2_pattern};
use scwsc::prelude::*;

fn materialized() -> (Table, scwsc::patterns::MaterializedPatterns) {
    let t = entities_table();
    let m = enumerate_all(&t, CostFn::Max);
    (t, m)
}

/// "The solution to the partial weighted set cover problem would return
/// the 7 sets/patterns P3, P5, P6, P8, P10, P12, P13, with a total cost
/// of 24."
#[test]
fn intro_weighted_set_cover_solution() {
    let (t, m) = materialized();
    let sol = greedy_weighted_set_cover(&m.system, 9.0 / 16.0, &mut Stats::new()).unwrap();
    assert_eq!(sol.total_cost().value(), 24.0);
    assert_eq!(sol.size(), 7);
    let chosen: Vec<Pattern> = m.solution_patterns(&sol).into_iter().cloned().collect();
    for number in [3usize, 5, 6, 8, 10, 12, 13] {
        let p = table2_pattern(&t, number).unwrap();
        assert!(chosen.contains(&p), "P{number} missing from {chosen:?}");
    }
}

/// "If k = 2 ... the optimal solution consists of sets P6 and P16, with a
/// total cost of 27."
#[test]
fn intro_size_constrained_optimum() {
    let (t, m) = materialized();
    let sol = exact_optimal(&m.system, 2, 9.0 / 16.0).unwrap();
    assert_eq!(sol.total_cost().value(), 27.0);
    let chosen: Vec<Pattern> = m.solution_patterns(&sol).into_iter().cloned().collect();
    assert!(chosen.contains(&table2_pattern(&t, 6).unwrap()));
    assert!(chosen.contains(&table2_pattern(&t, 16).unwrap()));
}

/// "If we wanted the cheapest solution with k = 2 sets, without a
/// constraint on the number of entities covered, the solution would
/// consist of P6 and P8, which cover only a fraction of 3/16 entities."
#[test]
fn intro_cheapest_two_sets() {
    let (t, m) = materialized();
    // The cheapest pair is exactly the optimum for a 3/16 requirement.
    let sol = exact_optimal(&m.system, 2, 3.0 / 16.0).unwrap();
    assert_eq!(sol.total_cost().value(), 5.0); // P6 (3) + P8 (2)
    assert_eq!(sol.covered(), 3);
    let chosen: Vec<Pattern> = m.solution_patterns(&sol).into_iter().cloned().collect();
    assert!(chosen.contains(&table2_pattern(&t, 6).unwrap()));
    assert!(chosen.contains(&table2_pattern(&t, 8).unwrap()));
}

/// "If we wanted any solution with k = 2 sets, and a 9/16 coverage
/// requirement, the solution returned (e.g., P11 and P15) has a high cost
/// (of 120)."
#[test]
fn intro_coverage_only_solution_is_expensive() {
    let (t, m) = materialized();
    let p11 = m.id_of(&table2_pattern(&t, 11).unwrap()).unwrap();
    let p15 = m.id_of(&table2_pattern(&t, 15).unwrap()).unwrap();
    let sol = Solution::from_sets(&m.system, vec![p11, p15]);
    assert_eq!(sol.total_cost().value(), 120.0);
    assert!(
        sol.covered() >= 9,
        "it does satisfy the coverage requirement"
    );
}

/// Section V-B walkthrough: CWSC picks P16 (gain 8/24) then P3 (gain 2/4).
#[test]
fn cwsc_walkthrough_selects_p16_then_p3() {
    let (t, m) = materialized();
    let sol = cwsc(&m.system, 2, 9.0 / 16.0, &mut Stats::new()).unwrap();
    let chosen = m.solution_patterns(&sol);
    assert_eq!(chosen[0], &table2_pattern(&t, 16).unwrap());
    assert_eq!(chosen[1], &table2_pattern(&t, 3).unwrap());
    assert_eq!(sol.total_cost().value(), 28.0);
    assert_eq!(sol.covered(), 10);
}

/// Section V-A walkthrough, first budget guess: "Since the two cheapest
/// patterns have a total cost of five, we use B = 5 in the first
/// iteration" — with k = 2 the levels are (2.5, 5] and [0, 2.5].
#[test]
fn cmc_walkthrough_initial_budget() {
    let (_, m) = materialized();
    assert_eq!(m.system.k_cheapest_cost(2).value(), 5.0); // P8 (2) + P13 or P6 (3)
    let levels = scwsc::sets::algorithms::cmc::Levels::build(LevelSchedule::Classic, 5.0, 2);
    assert_eq!(levels.len(), 2);
    assert_eq!(levels.quota(0), 2);
    assert_eq!(levels.quota(1), 2);
    // "H1 with costs between 3 and 5, and H2 with costs below three" --
    // i.e. the (2.5, 5] and [0, 2.5] bands over integer costs.
    assert_eq!(levels.level_of(4.0), Some(0));
    assert_eq!(levels.level_of(2.0), Some(1));
    assert_eq!(levels.level_of(5.5), None);
}

/// The paper's worked CMC run targets 9 records ((1−1/e)ŝ = 9/16) and
/// succeeds once B reaches 20.
#[test]
fn cmc_walkthrough_needs_budget_twenty() {
    let (_, m) = materialized();
    // The paper's example interprets 9/16 as the *discounted* target, so
    // run with the discount disabled and ŝ = 9/16 directly.
    let params = CmcParams {
        discount_coverage: false,
        ..CmcParams::classic(2, 9.0 / 16.0, 1.0)
    };
    let mut stats = Stats::new();
    let out = cmc(&m.system, &params, &mut stats).unwrap();
    assert!(out.solution.covered() >= 9);
    assert_eq!(out.final_budget, 20.0, "B doubles 5 -> 10 -> 20");
    assert_eq!(stats.budget_guesses, 3);
    assert!(out.solution.size() <= 5 * 2);
}

/// Table VI's shape on the entities data: more coverage, more patterns.
#[test]
fn wsc_needs_more_patterns_at_higher_coverage() {
    let (_, m) = materialized();
    let mut sizes = Vec::new();
    for s in [0.5, 0.7, 0.9] {
        let sol = greedy_weighted_set_cover(&m.system, s, &mut Stats::new()).unwrap();
        sizes.push(sol.size());
    }
    assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[2], "{sizes:?}");
}
