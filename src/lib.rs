//! # scwsc — Size-Constrained Weighted Set Cover
//!
//! A from-scratch Rust implementation of *"Size-Constrained Weighted Set
//! Cover"* (Golab, Korn, Li, Saha, Srivastava; ICDE 2015): given `n`
//! elements, weighted sets over them, a size bound `k`, and a coverage
//! fraction `ŝ`, find at most `k` sets covering at least `ŝ·n` elements
//! at minimum total weight.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`sets`] (`scwsc-core`) — the problem over arbitrary set systems:
//!   CMC (Fig. 1, `5k`/`(1+ε)k` variants), CWSC (Fig. 2), prior-art
//!   baselines, an exact branch-and-bound solver, plus the incremental
//!   and multi-weight extensions from the paper's future-work section;
//! * [`patterns`] (`scwsc-patterns`) — the patterned-set special case:
//!   tables, the pattern lattice, and the optimized CWSC/CMC of §V-C;
//! * [`data`] (`scwsc-data`) — the paper's Table I example, a synthetic
//!   LBL-like trace generator, and the §VI-B weight perturbations.
//!
//! ```
//! use scwsc::prelude::*;
//!
//! // The paper's Table I data set and its §V-B worked example:
//! let table = scwsc::data::entities_table();
//! let space = PatternSpace::new(&table, CostFn::Max);
//! let solution = opt_cwsc(&space, 2, 9.0 / 16.0, &mut Stats::new()).unwrap();
//! assert_eq!(solution.size(), 2);
//! assert_eq!(solution.total_cost, 28.0); // P16 {B,ALL} + P3 {A,North}
//! ```

pub use scwsc_core as sets;
pub use scwsc_data as data;
pub use scwsc_patterns as patterns;

/// The most commonly used items, for glob import in examples and
/// applications.
pub mod prelude {
    pub use scwsc_core::algorithms::{
        budgeted_max_coverage, cmc, cwsc, exact_optimal, greedy_max_coverage,
        greedy_partial_max_coverage, greedy_weighted_set_cover, CmcParams, LevelSchedule,
        CMC_COVERAGE_DISCOUNT,
    };
    pub use scwsc_core::{
        coverage_target, verify, Fanout, JsonlSink, MetricsRecorder, NoopObserver, Observer,
        Requirements, SetSystem, Solution, SolveError, Stats,
    };
    pub use scwsc_patterns::{
        enumerate_all, opt_cmc, opt_cwsc, CostFn, Pattern, PatternSolution, PatternSpace, Table,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reaches_all_crates() {
        let table = crate::data::entities_table();
        let space = PatternSpace::new(&table, CostFn::Max);
        let sol = opt_cwsc(&space, 2, 9.0 / 16.0, &mut Stats::new()).unwrap();
        assert!(sol.covered >= 9);

        let mut b = SetSystem::builder(4);
        b.add_set([0, 1], 1.0).add_universe_set(5.0);
        let sys = b.build().unwrap();
        let sol = cwsc(&sys, 1, 0.5, &mut Stats::new()).unwrap();
        assert_eq!(sol.total_cost().value(), 1.0);
    }
}
